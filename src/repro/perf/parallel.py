"""Deterministic process-parallel fan-out for pairwise products.

Off by default.  When :class:`repro.perf.config.PerfConfig` carries
``workers > 1`` and an operation has at least ``parallel_threshold``
independent work items whose estimated closure cost clears
``parallel_min_cost``, the items are split into contiguous chunks and
mapped across a cached ``ProcessPoolExecutor``.

Determinism: chunks are contiguous slices of the serial work list, chunk
results are concatenated in submission order, and every chunk worker is
a pure function of its payload — so the assembled output is equal to the
serial output, item for item, for any worker count.

Shared-memory transport: payloads made of generalized tuples are packed
once into a ``multiprocessing.shared_memory`` block — DBM bound matrices
as a contiguous float64 region, lrps/data/flags as one small pickled
header — and chunks carry only integer indices into it.  Workers attach
to the block and materialize the tuples (memoized per block name), so a
relation crosses the process boundary once per operation instead of
being re-pickled into every chunk.

Any pool or shared-memory failure (fork refused by the sandbox, no
``/dev/shm``, a worker dying, pickling trouble) falls back first to the
plain pickling transport and then to running the worker serially
in-process, which by the same purity argument returns identical results.
"""

from __future__ import annotations

import atexit
import pickle
import struct
from array import array
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.core.dbm import DBM
from repro.core.tuples import GeneralizedTuple
from repro.perf.config import PERF_COUNTERS

#: Chunks per worker: small enough to amortize submission overhead,
#: large enough to smooth out uneven per-pair costs.
CHUNKS_PER_WORKER = 4

#: Worker-side cap on memoized materialized blocks (block names are
#: unique per operation, so old entries are dead weight).
MATERIALIZE_CACHE = 8

_pools: dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _pools.get(workers)
    if pool is None:
        import multiprocessing

        # Prefer fork: children inherit the live perf configuration and
        # the imported core modules, so no per-task warmup is needed.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _pools[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool (registered atexit)."""
    for pool in _pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# shared-memory tuple transport
# ----------------------------------------------------------------------


class _SharedExtra:
    """Marks an ``extra`` that is a sequence of packed tuple indices."""

    __slots__ = ("indices",)

    def __init__(self, indices: list[int]) -> None:
        self.indices = indices

    def __getstate__(self) -> list[int]:
        return self.indices

    def __setstate__(self, state: list[int]) -> None:
        self.indices = state


def _encode_item(item: Any, index: dict[int, int], pool: list) -> Any:
    """One payload item with its tuples replaced by pack indices."""

    def ref(t: GeneralizedTuple) -> int:
        idx = index.get(id(t))
        if idx is None:
            idx = len(pool)
            index[id(t)] = idx
            pool.append(t)
        return idx

    if isinstance(item, GeneralizedTuple):
        return ref(item)
    if isinstance(item, tuple) and item and all(
        isinstance(part, GeneralizedTuple) for part in item
    ):
        return tuple(ref(part) for part in item)
    raise TypeError("payload item is not made of generalized tuples")


def _encode_shared(payloads: list, extra: Any):
    """Pack a tuple-shaped workload into one shared-memory block.

    Returns ``(shm, encoded_payloads, encoded_extra)``, or ``None`` when
    the payload shape is not tuple-based.  Raises on shared-memory or
    buffer-export trouble; the caller falls back to pickling transport.
    """
    index: dict[int, int] = {}
    pool: list[GeneralizedTuple] = []
    try:
        encoded_payloads = [
            _encode_item(item, index, pool) for item in payloads
        ]
    except TypeError:
        return None
    if isinstance(extra, (list, tuple)) and extra and all(
        isinstance(part, GeneralizedTuple) for part in extra
    ):
        encoded_extra: Any = _SharedExtra(
            [_encode_item(part, index, pool) for part in extra]
        )
    else:
        encoded_extra = extra
    metas = []
    flat = array("d")
    for t in pool:
        flat.extend(t.dbm.to_buffer())
        metas.append((t.lrps, t.data, t.dbm.size, t.dbm._closed))
    header = pickle.dumps(metas, protocol=pickle.HIGHEST_PROTOCOL)
    floats = flat.tobytes()
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(
        create=True, size=max(1, 16 + len(header) + len(floats))
    )
    shm.buf[:16] = struct.pack(">QQ", len(header), len(floats))
    shm.buf[16 : 16 + len(header)] = header
    shm.buf[16 + len(header) : 16 + len(header) + len(floats)] = floats
    return shm, encoded_payloads, encoded_extra


_materialized: dict[str, list[GeneralizedTuple]] = {}


def _materialize(name: str) -> list[GeneralizedTuple]:
    """Attach to a packed block and rebuild its tuples (memoized)."""
    cached = _materialized.get(name)
    if cached is not None:
        return cached
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        # The parent owns the block's lifetime (it unlinks after the
        # operation); unregister the attach so this process's resource
        # tracker does not try to clean it up a second time.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        header_len, floats_len = struct.unpack(">QQ", bytes(shm.buf[:16]))
        metas = pickle.loads(bytes(shm.buf[16 : 16 + header_len]))
        flat = array("d")
        flat.frombytes(
            bytes(shm.buf[16 + header_len : 16 + header_len + floats_len])
        )
    finally:
        shm.close()
    tuples: list[GeneralizedTuple] = []
    pos = 0
    for lrps, data, size, closed in metas:
        cells = (size + 1) * (size + 1)
        dbm = DBM.from_buffer(size, flat[pos : pos + cells], closed=closed)
        pos += cells
        tuples.append(GeneralizedTuple(lrps, dbm, data))
    if len(_materialized) >= MATERIALIZE_CACHE:
        _materialized.clear()
    _materialized[name] = tuples
    return tuples


def _decode_item(item: Any, tuples: list[GeneralizedTuple]) -> Any:
    if isinstance(item, int):
        return tuples[item]
    return tuple(tuples[idx] for idx in item)


def _shm_chunk_worker(
    worker: Callable[[list, Any], list], name: str, chunk: list, extra: Any
) -> list:
    """Materialize a chunk's tuples from shared memory and run it."""
    tuples = _materialize(name)
    decoded = [_decode_item(item, tuples) for item in chunk]
    if isinstance(extra, _SharedExtra):
        extra = [_decode_item(idx, tuples) for idx in extra.indices]
    return worker(decoded, extra)


# ----------------------------------------------------------------------
# fan-out driver
# ----------------------------------------------------------------------


def run_chunked(
    worker: Callable[[list, Any], list],
    payloads: Sequence,
    extra: Any,
    workers: int,
) -> list:
    """Fan ``worker(chunk, extra)`` across processes, preserving order.

    ``worker`` must be a picklable module-level function mapping a list
    of payload items to a list of results of the same length and order;
    ``extra`` carries per-operation context shared by all chunks.  The
    concatenated chunk results equal ``worker(list(payloads), extra)``.
    """
    payloads = list(payloads)
    if workers <= 1 or len(payloads) <= 1:
        return worker(payloads, extra)
    chunk_size = max(
        1, -(-len(payloads) // (workers * CHUNKS_PER_WORKER))
    )
    starts = range(0, len(payloads), chunk_size)
    if len(starts) <= 1:
        return worker(payloads, extra)
    shm = None
    try:
        pool = _get_pool(workers)
        shared = None
        try:
            shared = _encode_shared(payloads, extra)
        except Exception:
            shared = None
        if shared is not None:
            shm, encoded_payloads, encoded_extra = shared
            futures = [
                pool.submit(
                    _shm_chunk_worker,
                    worker,
                    shm.name,
                    encoded_payloads[start : start + chunk_size],
                    encoded_extra,
                )
                for start in starts
            ]
            PERF_COUNTERS["parallel_shm"] += 1
        else:
            futures = [
                pool.submit(worker, payloads[start : start + chunk_size], extra)
                for start in starts
            ]
        out: list = []
        for future in futures:
            out.extend(future.result())
    except Exception:
        PERF_COUNTERS["parallel_fallback"] += 1
        return worker(payloads, extra)
    finally:
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
    PERF_COUNTERS["parallel_fanout"] += 1
    return out
