"""Serialization: the paper's table syntax (text) and JSON."""

from repro.storage import csvio, jsonio, textio
from repro.storage.textio import format_relation, format_tuple, parse_header

__all__ = [
    "csvio",
    "format_relation",
    "format_tuple",
    "jsonio",
    "parse_header",
    "textio",
]
