"""Storage: serialization codecs plus the durable, crash-safe engine.

Two kinds of persistence live here:

* **codecs** — the paper's table syntax (:mod:`~repro.storage.textio`),
  JSON (:mod:`~repro.storage.jsonio`) and window-materialized CSV
  (:mod:`~repro.storage.csvio`) for one-shot import/export;
* **the engine** — :mod:`~repro.storage.engine`: an on-disk catalog
  with an append-only write-ahead log, snapshot compaction and
  crash recovery, exercised by the deterministic fault-injection
  harness in :mod:`~repro.storage.faults`.

Most callers reach the engine through
:meth:`repro.query.database.Database.open` rather than directly.
"""

from repro.storage import csvio, jsonio, textio
from repro.storage.engine import StorageEngine
from repro.storage.faults import FaultInjector, InjectedCrash, crash_at
from repro.storage.textio import format_relation, format_tuple, parse_header

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "StorageEngine",
    "crash_at",
    "csvio",
    "format_relation",
    "format_tuple",
    "jsonio",
    "parse_header",
    "textio",
]
