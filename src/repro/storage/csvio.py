"""CSV bridging: finite concrete data in and out of the symbolic world.

Two directions:

* **export** — materialize a window of a generalized relation as plain
  CSV rows (the lossy direction: the infinite extension is truncated,
  exactly like the paper's "1989, 1990, ... 2090" strawman — useful for
  spreadsheets and plotting, never for storage);
* **import** — read concrete rows into a generalized relation of
  singleton tuples, optionally *compressing* each data-group's time
  points into periodic tuples when they form arithmetic progressions
  (the inverse of materialization: recovering ``c + k·n`` from
  evidence).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Sequence

from repro.core.errors import ParseError
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema


def export_window(
    relation: GeneralizedRelation,
    low: int,
    high: int,
    header: bool = True,
) -> str:
    """Materialize the window ``[low, high]`` as CSV text.

    Columns follow the schema order; rows are sorted for determinism by
    their schema-typed values — temporal components numerically, data
    components by type name then string form.  (An earlier revision
    sorted by ``repr``, which misorders negative and multi-digit
    integers: ``"10" < "2"`` and ``"-1" < "1"`` lexicographically.)

    An inverted horizon (``low > high``) denotes the empty window and
    yields a header-only (or empty) document.
    """
    temporal_flags = tuple(a.temporal for a in relation.schema.attributes)

    def typed_key(point: tuple) -> tuple:
        return tuple(
            value if temporal else (type(value).__name__, str(value))
            for value, temporal in zip(point, temporal_flags)
        )

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if header:
        writer.writerow(relation.schema.names)
    for point in sorted(relation.enumerate(low, high), key=typed_key):
        writer.writerow(point)
    return buffer.getvalue()


def import_rows(
    schema: Schema,
    rows: Iterable[Sequence],
) -> GeneralizedRelation:
    """Build a relation of singleton tuples from concrete rows."""
    out = GeneralizedRelation.empty(schema)
    for row in rows:
        if len(row) != len(schema):
            raise ParseError(
                f"row {row!r} has {len(row)} fields, schema has "
                f"{len(schema)}"
            )
        temporal: list[int] = []
        data: list = []
        for value, attr in zip(row, schema.attributes):
            if attr.temporal:
                temporal.append(int(value))
            else:
                data.append(value)
        out.add_tuple([LRP.point(v) for v in temporal], "", data)
    return out


def import_csv(schema: Schema, text: str, header: bool = True) -> GeneralizedRelation:
    """Parse CSV text into a relation of singleton tuples.

    With ``header=True`` the first row must name the schema's attributes
    in order (a safeguard against column drift).
    """
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if header:
        if not rows:
            raise ParseError("empty CSV")
        names = tuple(name.strip() for name in rows[0])
        if names != schema.names:
            raise ParseError(
                f"CSV header {names} does not match schema {schema.names}"
            )
        rows = rows[1:]
    return import_rows(schema, rows)


def compress_unary(
    relation: GeneralizedRelation,
    min_run: int = 3,
) -> GeneralizedRelation:
    """Recognize arithmetic progressions in a finite unary relation.

    Groups the concrete points by data values and greedily folds maximal
    runs of ``min_run``-or-more equally-spaced points into *bounded
    periodic* tuples (``c + k·n`` with window constraints); leftovers
    stay singletons.  The result denotes exactly the same finite set,
    in (usually) far fewer tuples — evidence-based recovery of the
    symbolic representation.
    """
    if relation.schema.temporal_arity != 1:
        raise ParseError("compress_unary needs exactly one temporal column")
    from repro.core.temporal import is_finite

    if not is_finite(relation):
        raise ParseError("compress_unary needs a finite relation")
    by_data: dict[tuple, list[int]] = {}
    from repro.core.temporal import column_profile

    profile = column_profile(relation, relation.schema.temporal_names[0])
    if profile.count == 0:
        return GeneralizedRelation.empty(relation.schema)
    low, high = profile.lower, profile.upper
    for point in relation.enumerate(low, high):
        temporal, data = relation.split_point(point)
        by_data.setdefault(data, []).append(temporal[0])
    out = GeneralizedRelation.empty(relation.schema)
    name = relation.schema.temporal_names[0]
    for data, values in by_data.items():
        for start, step, count in _runs(sorted(values), min_run):
            if count == 1:
                out.add_tuple([LRP.point(start)], "", data)
            else:
                end = start + step * (count - 1)
                out.add_tuple(
                    [LRP.make(start, step)],
                    f"{name} >= {start} & {name} <= {end}",
                    data,
                )
    return out


def _runs(values: list[int], min_run: int):
    """Greedy maximal arithmetic runs; singletons for the rest."""
    i = 0
    n = len(values)
    while i < n:
        if i + 1 >= n:
            yield values[i], 1, 1
            i += 1
            continue
        step = values[i + 1] - values[i]
        j = i + 1
        while j + 1 < n and values[j + 1] - values[j] == step:
            j += 1
        length = j - i + 1
        if length >= min_run and step > 0:
            yield values[i], step, length
            i = j + 1
        else:
            yield values[i], 1, 1
            i += 1
