"""Deterministic fault injection for the durable storage engine.

The crash-recovery guarantees of :mod:`repro.storage.engine` are only
worth something if they are *tested at every point where a crash can
land*.  This module provides the seeded harness that does so: the
engine calls :func:`fire` at each named injection point on its
commit/compaction paths, and a test arms the process-global
:class:`FaultInjector` to simulate a crash at exactly one of them.

A simulated crash is an :class:`InjectedCrash` — deliberately **not** a
:class:`~repro.core.errors.ReproError`, so none of the library's normal
``except ReproError`` handlers can swallow it, just as no handler can
swallow a real power failure.  After a crash fires, the engine marks
itself dead; the test then reopens the same path and checks what
recovery produced.

Injection points (:data:`POINTS`):

=====================  ====================================================
``wal.append``         before an op record is written; supports *torn*
                       writes (only a prefix of the record reaches disk)
``wal.commit``         before the transaction's commit marker is written
``wal.fsync``          after all records are written, before fsync
``snapshot.write``     before the snapshot temp file is written (torn
                       writes supported)
``snapshot.fsync``     before the snapshot temp file is fsynced
``snapshot.rename``    before the temp snapshot is renamed into place
``manifest.write``     before the manifest temp file is written (torn
                       writes supported)
``manifest.rename``    before the new manifest is renamed over the old
``wal.reset``          after compaction commits, before the WAL truncates
=====================  ====================================================

Usage (the crash-recovery matrix in ``tests/test_storage_faults.py``)::

    from repro.storage import faults

    with faults.crash_at("wal.commit"):
        try:
            db.commit()
        except faults.InjectedCrash:
            pass
    recovered = Database.open(path)   # pre-commit state, exactly

Determinism: injection is purely counter-based (the ``hit``-th firing
of a point crashes), so a fault plan plus a seeded workload replays
identically on every run and machine.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

#: Every injection point the engine fires, in protocol order.
POINTS: tuple[str, ...] = (
    "wal.append",
    "wal.commit",
    "wal.fsync",
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.rename",
    "manifest.write",
    "manifest.rename",
    "wal.reset",
)

#: Injection points where a *torn* (partial) write can be simulated.
TORN_POINTS: tuple[str, ...] = ("wal.append", "snapshot.write", "manifest.write")


class InjectedCrash(RuntimeError):
    """A simulated process death at a named injection point.

    Subclasses :class:`RuntimeError`, *not* ``ReproError``: fault
    injection models the machine dying, and nothing in the library is
    allowed to catch and survive it except the test harness itself.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class _Arm:
    """One armed fault: crash on the ``hit``-th firing of ``point``."""

    point: str
    hit: int = 1
    fraction: float | None = None  # torn-write prefix fraction, if any


class FaultInjector:
    """Counter-based fault injection: deterministic, off by default.

    The engine calls :meth:`fire` at every injection point; with
    nothing armed this is a dictionary increment and a ``None`` return,
    so production paths pay effectively nothing.
    """

    def __init__(self) -> None:
        self._arms: list[_Arm] = []
        self.hits: dict[str, int] = {}

    def arm(
        self, point: str, hit: int = 1, fraction: float | None = None
    ) -> None:
        """Crash on the ``hit``-th firing of ``point``.

        ``fraction`` (0.0–1.0) requests a *torn write*: the engine
        writes that fraction of the pending payload before dying, which
        only points in :data:`TORN_POINTS` support.
        """
        if point not in POINTS:
            raise ValueError(f"unknown injection point {point!r}")
        if hit < 1:
            raise ValueError("hit counts from 1")
        if fraction is not None:
            if point not in TORN_POINTS:
                raise ValueError(f"{point!r} does not support torn writes")
            if not 0.0 <= fraction <= 1.0:
                raise ValueError("fraction must be within [0, 1]")
        self._arms.append(_Arm(point, hit, fraction))

    def reset(self) -> None:
        """Disarm everything and zero the hit counters."""
        self._arms.clear()
        self.hits.clear()

    @property
    def armed(self) -> bool:
        """Whether any fault is currently armed."""
        return bool(self._arms)

    def fire(self, point: str, size: int | None = None) -> int | None:
        """Report reaching ``point``; crash if an armed fault matches.

        Returns ``None`` (no fault) or, for a torn write, the number of
        payload bytes (of ``size``) the engine must write *before*
        raising :class:`InjectedCrash` itself.  Plain crashes raise
        directly from here.
        """
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        for armed in self._arms:
            if armed.point != point or armed.hit != count:
                continue
            if armed.fraction is None or size is None:
                raise InjectedCrash(point)
            return int(size * armed.fraction)
        return None


#: The process-global injector the engine fires into.
_INJECTOR = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-global :class:`FaultInjector` (disarmed by default)."""
    return _INJECTOR


def fire(point: str, size: int | None = None) -> int | None:
    """Module-level shorthand for ``get_injector().fire(...)``."""
    return _INJECTOR.fire(point, size)


@contextmanager
def crash_at(point: str, hit: int = 1, fraction: float | None = None):
    """Arm one fault for the duration of a ``with`` block.

    The injector is reset on exit regardless of how the block ends, so
    a crashed engine never leaks an armed fault into the next test.
    """
    _INJECTOR.reset()
    _INJECTOR.arm(point, hit=hit, fraction=fraction)
    try:
        yield _INJECTOR
    finally:
        _INJECTOR.reset()
