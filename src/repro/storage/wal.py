"""Write-ahead-log record framing: CRC-guarded, torn-tail-safe.

The durable engine (:mod:`repro.storage.engine`) appends every catalog
mutation to an append-only log before applying it.  This module owns
the *physical* record format; the engine owns the *logical* protocol
(transactions, commit markers, replay).

Frame format — one ASCII line per record::

    <crc32:08x> <payload-length> <payload-json>\\n

* ``payload-json`` is compact (no embedded newlines), produced by
  :func:`canonical_json`;
* ``crc32`` is computed over the payload bytes only, so a flipped bit
  anywhere in the payload is detected;
* the trailing newline doubles as an end-of-record marker: a record
  missing it was torn mid-write.

A *torn tail* — the suffix left by a crash mid-append — is therefore
always detectable: the length does not match, the CRC does not match,
or the newline is missing.  :func:`scan_wal` decodes the longest valid
prefix and reports where it ends, so recovery can truncate the garbage
and continue from a clean state.  Torn-tail handling is deliberately
*prefix-only*: the first bad frame ends the scan, because an
append-only log cannot contain valid records after a torn one (writes
are sequential).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import StorageError


def canonical_json(payload: dict[str, Any]) -> str:
    """Serialize ``payload`` compactly and deterministically.

    Sorted keys and minimal separators make the encoding canonical:
    equal payloads encode to equal bytes, which the engine relies on to
    detect changed relations by string comparison.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one payload dictionary as a CRC-guarded WAL record."""
    body = canonical_json(payload).encode("utf-8")
    if b"\n" in body:
        raise StorageError("WAL payload must not contain newlines")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x %d " % (crc, len(body)) + body + b"\n"


def decode_record(line: bytes) -> dict[str, Any]:
    """Decode one complete record line (without trusting it).

    Raises :class:`~repro.core.errors.StorageError` on any framing or
    checksum violation; the engine treats that as a torn/corrupt record.
    """
    if not line.endswith(b"\n"):
        raise StorageError("torn WAL record: missing end-of-record marker")
    try:
        crc_text, length_text, body = line[:-1].split(b" ", 2)
        expected_crc = int(crc_text, 16)
        expected_length = int(length_text, 10)
    except ValueError as exc:
        raise StorageError(f"malformed WAL record header: {exc}") from exc
    if len(body) != expected_length:
        raise StorageError(
            f"torn WAL record: payload is {len(body)} bytes, "
            f"header promised {expected_length}"
        )
    if (zlib.crc32(body) & 0xFFFFFFFF) != expected_crc:
        raise StorageError("corrupt WAL record: CRC mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt WAL record: bad payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise StorageError("corrupt WAL record: payload is not an object")
    return payload


@dataclass
class WalScan:
    """The result of scanning a log: valid records plus tail diagnosis.

    ``valid_bytes`` is the offset where the valid prefix ends; recovery
    truncates the file there when ``torn`` is set.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    torn: bool = False


def scan_wal(data: bytes) -> WalScan:
    """Decode the longest valid prefix of an append-only log.

    Never raises on bad input — a torn or corrupt frame simply ends the
    scan (``torn=True``), mirroring what replay-after-crash must do.
    """
    scan = WalScan()
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            scan.torn = True  # unterminated tail
            break
        line = data[offset : newline + 1]
        try:
            payload = decode_record(line)
        except StorageError:
            scan.torn = True
            break
        scan.records.append(payload)
        offset = newline + 1
        scan.valid_bytes = offset
    return scan
