"""JSON serialization for generalized relations and databases.

The JSON form is a faithful structural dump: lrps as ``[offset,
period]`` pairs, constraints as the closed DBM's finite bounds, data
values as JSON scalars.  Round-tripping preserves the denoted point set
exactly (and the canonical structure up to DBM closure).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.dbm import DBM
from repro.core.errors import ParseError
from repro.core.lrp import LRP
from repro.core.relations import Attribute, GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple


def relation_to_dict(relation: GeneralizedRelation) -> dict[str, Any]:
    """Convert a relation to a JSON-ready dictionary.

    Tuples with unsatisfiable constraints denote the empty set and are
    omitted (their contradiction may be recorded in a diagonal marker
    the off-diagonal bounds list cannot express).
    """
    return {
        "schema": [
            {"name": a.name, "temporal": a.temporal}
            for a in relation.schema.attributes
        ],
        "tuples": [
            {
                "lrps": [[lrp.offset, lrp.period] for lrp in t.lrps],
                "bounds": [
                    [i, j, bound] for i, j, bound in t.dbm.iter_bounds()
                ],
                "data": list(t.data),
            }
            for t in relation.tuples
            if t.dbm.copy().close()
        ],
    }


def relation_from_dict(payload: dict[str, Any]) -> GeneralizedRelation:
    """Rebuild a relation from its dictionary form."""
    try:
        attrs = tuple(
            Attribute(item["name"], bool(item["temporal"]))
            for item in payload["schema"]
        )
        schema = Schema(attrs)
        relation = GeneralizedRelation.empty(schema)
        for entry in payload["tuples"]:
            lrps = tuple(
                LRP.make(offset, period) for offset, period in entry["lrps"]
            )
            dbm = DBM(len(lrps))
            for i, j, bound in entry["bounds"]:
                if i >= 0 and j >= 0:
                    dbm.add_difference(i, j, bound)
                elif j < 0:
                    dbm.add_upper(i, bound)
                else:
                    dbm.add_lower(j, -bound)
            relation.add(
                GeneralizedTuple(lrps=lrps, dbm=dbm, data=tuple(entry["data"]))
            )
        return relation
    except (KeyError, TypeError, ValueError) as exc:
        raise ParseError(f"malformed relation payload: {exc}") from exc


def dumps(relation: GeneralizedRelation, **json_kwargs) -> str:
    """Serialize one relation to a JSON string."""
    return json.dumps(relation_to_dict(relation), **json_kwargs)


def loads(text: str) -> GeneralizedRelation:
    """Deserialize one relation from a JSON string."""
    return relation_from_dict(json.loads(text))


def dump_database(relations: dict[str, GeneralizedRelation], **json_kwargs) -> str:
    """Serialize a name-to-relation mapping."""
    return json.dumps(
        {name: relation_to_dict(rel) for name, rel in relations.items()},
        **json_kwargs,
    )


def load_database(text: str) -> dict[str, GeneralizedRelation]:
    """Deserialize a name-to-relation mapping."""
    payload = json.loads(text)
    return {
        name: relation_from_dict(entry) for name, entry in payload.items()
    }
