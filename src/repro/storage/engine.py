"""The durable storage engine: WAL-backed catalog with crash recovery.

The paper's central claim (Defs. 2.1–2.3) is that infinite temporal
extensions admit a *finite, storable* representation.  This module
makes "storable" literal: a :class:`StorageEngine` persists a whole
catalog of generalized relations on disk and guarantees that a crash
at any moment leaves the database recoverable to exactly the last
committed state.

On-disk layout (one directory per database)::

    <root>/
      MANIFEST           one CRC-framed record: format version, the
                         current snapshot name and its LSN
      wal.log            append-only CRC-framed mutation records
      snapshots/         full-catalog snapshot files, one live at a time
        snapshot-<lsn>.json

Logical WAL records (physical framing in :mod:`repro.storage.wal`):

* ``{"lsn", "txn", "op": "put",  "name", "relation"}`` — create or
  replace one relation (payload via :mod:`repro.storage.jsonio`);
* ``{"lsn", "txn", "op": "drop", "name"}`` — remove one relation;
* ``{"lsn", "txn", "op": "commit", "ops": k}`` — transaction commit
  marker; a transaction's records only take effect if this marker made
  it to disk intact.

Commit protocol (:meth:`StorageEngine.commit`): diff the live catalog
against the last committed state, append one ``put``/``drop`` record
per changed relation, append the commit marker, fsync once.  Recovery
(:meth:`StorageEngine.open`) loads the manifest's snapshot, replays
every *committed* transaction whose LSNs exceed the snapshot's, and
truncates any torn tail — so a crash anywhere inside commit leaves
either the full pre-commit or the full post-commit state, never a
partial one.

**Group commit** (:meth:`StorageEngine.commit_many`) generalizes the
protocol to a batch of transactions: each catalog state in the batch is
diffed against its predecessor and appended as its own WAL transaction
(records + commit marker), but the whole batch shares one fsync at the
end.  A crash mid-batch is still per-transaction atomic — recovery
keeps exactly the prefix of transactions whose commit markers reached
disk — and no caller is acknowledged before the shared fsync returns,
so an unacknowledged transaction lost to a crash was never promised.
This is what lets the serving layer (:mod:`repro.serve`) funnel many
concurrent writers through a single disk flush.

**Single-writer lock**: :meth:`open` takes an exclusive ``flock`` on
``<root>/LOCK`` and holds it until :meth:`close`.  A second engine —
in this or any other process — opening the same root gets a clean
:class:`~repro.core.errors.StorageError` instead of interleaving WAL
appends with the first.  A crashed engine (injected fault) releases
the lock immediately, modeling the OS dropping a dead process's locks.

Every transaction committed bumps the engine's monotone
:attr:`~StorageEngine.version` token; the MVCC catalog core
(:mod:`repro.query.catalog`) uses it to name immutable committed
catalog versions.

Compaction (:meth:`StorageEngine.compact`) folds the WAL into a fresh
snapshot using the classic temp-file/fsync/rename dance, updating the
manifest atomically before truncating the log; a crash at any step
leaves a state recovery reads back identically (compaction never
changes the committed catalog, only its encoding).

Every step on these paths fires a named injection point from
:mod:`repro.storage.faults`; ``tests/test_storage_faults.py`` is the
matrix that proves the atomicity claim at each of them.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

try:  # POSIX only; on other platforms the single-writer lock is a no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from repro.core.errors import RecoveryError, StorageError
from repro.core.relations import GeneralizedRelation
from repro.obs import metrics
from repro.storage import faults, jsonio
from repro.storage.wal import canonical_json, encode_record, scan_wal

FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
SNAPSHOT_DIR = "snapshots"
LOCK_NAME = "LOCK"


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory (durability of renames)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


class StorageEngine:
    """A crash-safe, WAL-backed store for one catalog of relations.

    Use :meth:`open` (or, at one level up,
    :meth:`repro.query.database.Database.open`) rather than the
    constructor; open runs recovery and leaves the engine ready to
    append.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.relations: dict[str, GeneralizedRelation] = {}
        self._committed: dict[str, str] = {}  # name -> canonical payload
        self._next_lsn = 1
        self._next_txn = 1
        self._snapshot_lsn = 0
        self._snapshot_name: str | None = None
        self._wal_file = None
        self._lock_fd: int | None = None
        self._closed = True
        self._crashed = False

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    @property
    def _wal_path(self) -> str:
        return os.path.join(self.root, WAL_NAME)

    @property
    def _snapshot_dir(self) -> str:
        return os.path.join(self.root, SNAPSHOT_DIR)

    @property
    def _lock_path(self) -> str:
        return os.path.join(self.root, LOCK_NAME)

    # ------------------------------------------------------------------
    # single-writer lock
    # ------------------------------------------------------------------

    def _acquire_lock(self) -> None:
        """Take the exclusive inter-process lock on this root.

        Uses a non-blocking ``flock`` on ``<root>/LOCK`` so a second
        opener — another process or another engine in this one — fails
        fast with :class:`~repro.core.errors.StorageError` instead of
        silently interleaving WAL appends with the holder.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return
        fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise StorageError(
                f"database at {self.root!r} is locked by another writer "
                "(the storage engine is single-writer; close the other "
                "handle or serve the database via repro.serve)"
            ) from None
        self._lock_fd = fd

    def _release_lock(self) -> None:
        """Drop the inter-process lock (idempotent)."""
        if self._lock_fd is None:
            return
        try:
            os.close(self._lock_fd)  # closing the fd releases the flock
        except OSError:  # pragma: no cover - already closed
            pass
        self._lock_fd = None

    def _mark_crashed(self) -> None:
        """Record an injected crash and release the lock.

        A real crash would end the process, and the OS would drop its
        ``flock`` with it; the simulated crash must do the same so the
        test harness can reopen the root the way a restarted process
        would.
        """
        self._crashed = True
        self._release_lock()

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, root: str, create: bool = True) -> StorageEngine:
        """Open (and recover) the database at ``root``.

        With ``create`` set (the default) a missing or empty directory
        is initialized to an empty database; otherwise opening a path
        with no manifest raises :class:`~repro.core.errors.StorageError`.

        Opening takes the exclusive single-writer lock first — before
        recovery, which may truncate a torn WAL tail — so two engines
        can never repair or append to the same root concurrently; the
        loser gets a :class:`~repro.core.errors.StorageError`.
        """
        engine = cls(root)
        started = time.perf_counter()
        if not os.path.exists(engine._manifest_path):
            if not create:
                raise StorageError(f"no database at {root!r}")
            if os.path.isdir(root) and any(
                entry not in (SNAPSHOT_DIR, WAL_NAME, LOCK_NAME)
                for entry in os.listdir(root)
            ):
                raise StorageError(
                    f"refusing to initialize a database in non-empty "
                    f"directory {root!r}"
                )
            os.makedirs(root, exist_ok=True)
        engine._acquire_lock()
        try:
            if not os.path.exists(engine._manifest_path):
                engine._initialize()
            engine._recover()
            engine._wal_file = open(engine._wal_path, "ab", buffering=0)
        except BaseException:
            engine._release_lock()
            raise
        engine._closed = False
        registry = metrics()
        registry.histogram("storage.recovery.seconds").observe(
            time.perf_counter() - started
        )
        registry.gauge("storage.wal.bytes").set(
            os.path.getsize(engine._wal_path)
        )
        registry.gauge("storage.relations").set(len(engine.relations))
        return engine

    def _initialize(self) -> None:
        """Create the directory skeleton and an empty manifest."""
        os.makedirs(self._snapshot_dir, exist_ok=True)
        with open(self._wal_path, "ab"):
            pass
        self._write_manifest(snapshot=None, snapshot_lsn=0, fire=False)

    def _manifest_payload(
        self, snapshot: str | None, snapshot_lsn: int
    ) -> dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "snapshot": snapshot,
            "snapshot_lsn": snapshot_lsn,
        }

    def _write_manifest(
        self, snapshot: str | None, snapshot_lsn: int, fire: bool = True
    ) -> None:
        """Atomically replace the manifest (temp + fsync + rename)."""
        record = encode_record(
            self._manifest_payload(snapshot, snapshot_lsn)
        )
        tmp = self._manifest_path + ".tmp"
        if fire:
            self._guarded_write("manifest.write", tmp, record)
        else:
            with open(tmp, "wb", buffering=0) as handle:
                handle.write(record)
                os.fsync(handle.fileno())
        if fire:
            faults.fire("manifest.rename")
        os.replace(tmp, self._manifest_path)
        _fsync_dir(self.root)
        self._snapshot_name = snapshot
        self._snapshot_lsn = snapshot_lsn

    def _guarded_write(self, point: str, path: str, data: bytes) -> None:
        """Write ``data`` to ``path``, honoring torn-write injection."""
        cut = faults.fire(point, size=len(data))
        with open(path, "wb", buffering=0) as handle:
            if cut is not None:
                handle.write(data[:cut])
                self._mark_crashed()
                raise faults.InjectedCrash(point)
            handle.write(data)
            faults.fire(point.rsplit(".", 1)[0] + ".fsync")
            os.fsync(handle.fileno())

    def _recover(self) -> None:
        """Rebuild the committed state: snapshot + committed WAL suffix."""
        manifest = self._read_framed_file(self._manifest_path, "manifest")
        if manifest.get("format") != FORMAT_VERSION:
            raise RecoveryError(
                f"unsupported storage format {manifest.get('format')!r}"
            )
        self._snapshot_name = manifest.get("snapshot")
        self._snapshot_lsn = int(manifest.get("snapshot_lsn") or 0)
        payloads: dict[str, dict] = {}
        if self._snapshot_name is not None:
            snapshot_path = os.path.join(
                self._snapshot_dir, self._snapshot_name
            )
            snapshot = self._read_framed_file(snapshot_path, "snapshot")
            payloads.update(snapshot.get("relations", {}))
        replayed, discarded = self._replay_wal(payloads)
        self.relations = {}
        self._committed = {}
        for name, payload in payloads.items():
            try:
                relation = jsonio.relation_from_dict(payload)
            except Exception as exc:
                raise RecoveryError(
                    f"cannot rebuild relation {name!r}: {exc}"
                ) from exc
            self.relations[name] = relation
            self._committed[name] = canonical_json(payload)
        self._cleanup_snapshots()
        registry = metrics()
        registry.counter("storage.recovery.records_replayed").inc(replayed)
        registry.counter("storage.recovery.txns_discarded").inc(discarded)

    def _read_framed_file(self, path: str, what: str) -> dict[str, Any]:
        """Read a single-record CRC-framed file (manifest or snapshot)."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise RecoveryError(f"cannot read {what} at {path!r}: {exc}")
        scan = scan_wal(data)
        if scan.torn or len(scan.records) != 1:
            raise RecoveryError(
                f"{what} at {path!r} is corrupt "
                f"({len(scan.records)} valid record(s), torn={scan.torn})"
            )
        return scan.records[0]

    def _replay_wal(self, payloads: dict[str, dict]) -> tuple[int, int]:
        """Apply committed WAL transactions onto ``payloads`` in place.

        Returns ``(records_replayed, txns_discarded)``.  Truncates a
        torn tail so the next append starts from a clean record
        boundary.
        """
        if not os.path.exists(self._wal_path):
            return 0, 0
        with open(self._wal_path, "rb") as handle:
            data = handle.read()
        scan = scan_wal(data)
        if scan.torn:
            with open(self._wal_path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
            _fsync_dir(self.root)
        pending: dict[int, list[dict]] = {}
        replayed = 0
        max_lsn = self._snapshot_lsn
        max_txn = 0
        for record in scan.records:
            try:
                lsn = int(record["lsn"])
                txn = int(record["txn"])
                op = record["op"]
            except (KeyError, TypeError, ValueError) as exc:
                raise RecoveryError(f"malformed WAL record: {exc}") from exc
            max_lsn = max(max_lsn, lsn)
            max_txn = max(max_txn, txn)
            if lsn <= self._snapshot_lsn:
                continue  # already folded into the snapshot
            if op == "commit":
                for applied in pending.pop(txn, []):
                    if applied["op"] == "put":
                        payloads[applied["name"]] = applied["relation"]
                    else:
                        payloads.pop(applied["name"], None)
                    replayed += 1
            elif op in ("put", "drop"):
                pending.setdefault(txn, []).append(record)
            else:
                raise RecoveryError(f"unknown WAL op {op!r}")
        self._next_lsn = max_lsn + 1
        self._next_txn = max_txn + 1
        return replayed, len(pending)

    def _cleanup_snapshots(self) -> None:
        """Drop temp files and snapshots the manifest no longer names."""
        if not os.path.isdir(self._snapshot_dir):
            return
        for entry in os.listdir(self._snapshot_dir):
            if entry == self._snapshot_name:
                continue
            try:
                os.remove(os.path.join(self._snapshot_dir, entry))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def commit(self, relations: dict[str, GeneralizedRelation]) -> int:
        """Durably record ``relations`` as the new committed state.

        Appends one ``put`` record per new/changed relation and one
        ``drop`` per removed relation, then the commit marker, then
        fsyncs.  Returns the number of mutation records written (0 when
        nothing changed — no I/O at all in that case).  Atomic: a crash
        anywhere inside leaves the previous committed state recoverable.
        """
        return self.commit_many([relations])[0]

    def commit_many(
        self,
        states: list[dict[str, GeneralizedRelation]],
        changed: list[set[str] | None] | None = None,
    ) -> list[int]:
        """Group commit: one WAL transaction per state, one shared fsync.

        Each catalog state is diffed against its predecessor (the first
        against the last committed state) and appended as its own
        transaction — ``put``/``drop`` records plus a commit marker —
        and the whole batch is made durable by a *single* fsync at the
        end.  Returns the per-state mutation record counts (0 for a
        state identical to its predecessor, which appends nothing and
        consumes no transaction id).

        ``changed`` optionally narrows the diff, one entry per state: a
        set of relation names the caller guarantees are the *only* ones
        whose content may differ from the predecessor state (``None``
        entries diff everything).  The transactional core supplies this
        from its copy-on-write bookkeeping, turning the per-transaction
        diff cost from O(catalog) serialization into O(touched) —
        relations outside the hint keep their committed payload without
        being re-serialized.  Dropped relations are always detected
        from the state's keys, hint or not.

        Atomicity is per transaction: a crash mid-batch recovers to the
        longest prefix of transactions whose commit markers reached
        disk.  Callers must not acknowledge any transaction in the
        batch before this method returns — that is the group-commit
        contract the serving layer's batcher upholds.
        """
        self._check_live()
        started = time.perf_counter()
        counts: list[int] = []
        committed = dict(self._committed)
        bytes_appended = 0
        records_appended = 0
        txns = 0
        try:
            for index, relations in enumerate(states):
                hint = changed[index] if changed is not None else None
                current: dict[str, str] = {}
                puts: list[tuple[str, dict]] = []
                for name, relation in relations.items():
                    if (
                        hint is not None
                        and name not in hint
                        and name in committed
                    ):
                        current[name] = committed[name]
                        continue
                    payload = jsonio.relation_to_dict(relation)
                    encoded = canonical_json(payload)
                    current[name] = encoded
                    if committed.get(name) != encoded:
                        puts.append((name, payload))
                drops = [name for name in committed if name not in current]
                if not puts and not drops:
                    counts.append(0)
                    continue
                txn = self._next_txn
                for name, payload in puts:
                    bytes_appended += self._append(
                        {
                            "lsn": self._next_lsn,
                            "txn": txn,
                            "op": "put",
                            "name": name,
                            "relation": payload,
                        }
                    )
                for name in drops:
                    bytes_appended += self._append(
                        {
                            "lsn": self._next_lsn,
                            "txn": txn,
                            "op": "drop",
                            "name": name,
                        }
                    )
                faults.fire("wal.commit")
                bytes_appended += self._append(
                    {
                        "lsn": self._next_lsn,
                        "txn": txn,
                        "op": "commit",
                        "ops": len(puts) + len(drops),
                    }
                )
                self._next_txn = txn + 1
                committed = current
                txns += 1
                records_appended += len(puts) + len(drops) + 1
                counts.append(len(puts) + len(drops))
            if txns:
                faults.fire("wal.fsync")
                os.fsync(self._wal_file.fileno())
        except faults.InjectedCrash:
            self._mark_crashed()
            raise
        if not txns:
            return counts
        self._committed = committed
        self.relations = dict(states[-1])
        registry = metrics()
        registry.counter("storage.wal.records_appended").inc(records_appended)
        registry.counter("storage.wal.bytes_appended").inc(bytes_appended)
        registry.counter("storage.wal.fsyncs").inc()
        registry.counter("storage.commit.txns").inc(txns)
        registry.histogram("storage.commit.batch_txns").observe(txns)
        registry.gauge("storage.wal.bytes").set(
            os.path.getsize(self._wal_path)
        )
        registry.gauge("storage.relations").set(len(states[-1]))
        registry.histogram("storage.commit.seconds").observe(
            time.perf_counter() - started
        )
        return counts

    def _append(self, payload: dict[str, Any]) -> int:
        """Frame and append one record (torn-write injection point)."""
        data = encode_record(payload)
        cut = faults.fire("wal.append", size=len(data))
        if cut is not None:
            self._wal_file.write(data[:cut])
            self._mark_crashed()
            raise faults.InjectedCrash("wal.append")
        self._wal_file.write(data)
        self._next_lsn += 1
        return len(data)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self) -> str:
        """Fold the committed state into a fresh snapshot; truncate WAL.

        Only *committed* state is compacted — uncommitted in-memory
        mutations stay uncommitted.  The protocol is crash-safe at
        every step: snapshot to a temp file, fsync, rename, atomically
        swing the manifest, and only then truncate the log.  Returns
        the new snapshot's file name.
        """
        self._check_live()
        started = time.perf_counter()
        snapshot_lsn = self._next_lsn - 1
        payload = {
            "format": FORMAT_VERSION,
            "snapshot_lsn": snapshot_lsn,
            "relations": {
                name: json.loads(encoded)
                for name, encoded in self._committed.items()
            },
        }
        record = encode_record(payload)
        name = f"snapshot-{snapshot_lsn:012d}.json"
        final = os.path.join(self._snapshot_dir, name)
        tmp = final + ".tmp"
        try:
            self._guarded_write("snapshot.write", tmp, record)
            faults.fire("snapshot.rename")
            os.replace(tmp, final)
            _fsync_dir(self._snapshot_dir)
            self._write_manifest(snapshot=name, snapshot_lsn=snapshot_lsn)
            faults.fire("wal.reset")
        except faults.InjectedCrash:
            self._mark_crashed()
            raise
        self._wal_file.close()
        self._wal_file = open(self._wal_path, "wb", buffering=0)
        _fsync_dir(self.root)
        self._cleanup_snapshots()
        registry = metrics()
        registry.counter("storage.snapshots_written").inc()
        registry.gauge("storage.snapshot.bytes").set(len(record))
        registry.gauge("storage.wal.bytes").set(0)
        registry.histogram("storage.snapshot.seconds").observe(
            time.perf_counter() - started
        )
        return name

    # ------------------------------------------------------------------
    # lifecycle / inspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush and release file handles (idempotent).

        Closing does *not* commit: like a real database, work not
        committed before ``close`` is gone on reopen.
        """
        if self._wal_file is not None and not self._wal_file.closed:
            if not self._crashed:
                try:
                    os.fsync(self._wal_file.fileno())
                except OSError:  # pragma: no cover
                    pass
            self._wal_file.close()
        self._release_lock()
        self._closed = True

    def _check_live(self) -> None:
        if self._crashed:
            raise StorageError(
                "engine crashed (injected fault); reopen the database"
            )
        if self._closed:
            raise StorageError("engine is closed")

    @property
    def version(self) -> int:
        """The monotone committed-version token (last committed txn id).

        Starts at the highest transaction id recovery replayed (0 for a
        fresh database) and bumps once per committed transaction — the
        identity the MVCC catalog core stamps on immutable committed
        versions.
        """
        return self._next_txn - 1

    def info(self) -> dict[str, Any]:
        """A JSON-friendly summary of the store (for ``repro db info``)."""
        wal_bytes = (
            os.path.getsize(self._wal_path)
            if os.path.exists(self._wal_path)
            else 0
        )
        return {
            "root": self.root,
            "format": FORMAT_VERSION,
            "relations": {
                name: len(rel) for name, rel in self.relations.items()
            },
            "snapshot": self._snapshot_name,
            "snapshot_lsn": self._snapshot_lsn,
            "next_lsn": self._next_lsn,
            "version": self.version,
            "wal_bytes": wal_bytes,
        }

    def __enter__(self) -> StorageEngine:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "crashed" if self._crashed else (
            "closed" if self._closed else "open"
        )
        return (
            f"<StorageEngine {self.root!r} {state} "
            f"relations={list(self.relations)}>"
        )
