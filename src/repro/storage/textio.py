"""Textual serialization in the paper's table style.

Grammar for one generalized tuple::

    [3 + 5n, 7] : X1 <= X2 + 4 & X1 >= 0 | robot1, task2

i.e. an lrp vector in brackets, then optionally ``:`` and a constraint
conjunction over the schema's temporal attribute names, then optionally
``|`` and comma-separated data values.  A relation file is a header line
naming the schema followed by one tuple per line::

    relation Perform(t1:T, t2:T, robot:D, task:D)
    [2 + 2n, 4 + 2n] : t1 = t2 - 2 & t1 >= -1 | robot1, task1

Lines starting with ``#`` and blank lines are ignored.  Data values are
stored as strings; quote a value to protect leading/trailing spaces.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.core.constraints import dbm_to_atoms
from repro.core.relations import Attribute, GeneralizedRelation, Schema


def format_tuple(relation: GeneralizedRelation, index: int) -> str:
    """Render tuple ``index`` of ``relation`` in the table syntax."""
    gtuple = relation.tuples[index]
    lrp_part = "[" + ", ".join(str(lrp) for lrp in gtuple.lrps) + "]"
    atoms = dbm_to_atoms(gtuple.dbm, relation.schema.temporal_names)
    parts = [lrp_part]
    if atoms:
        parts[0] += " : " + " & ".join(str(a) for a in atoms)
    if gtuple.data:
        parts.append(" | " + ", ".join(_quote(v) for v in gtuple.data))
    return "".join(parts)


def _quote(value) -> str:
    text = str(value)
    if text != text.strip() or any(ch in text for ch in ",|\"[]"):
        return '"' + text.replace('"', '\\"') + '"'
    return text


def _unquote(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1].replace('\\"', '"')
    return text


def format_relation(relation: GeneralizedRelation, name: str = "r") -> str:
    """Render a whole relation, header line included.

    Tuples with unsatisfiable constraints denote the empty set and are
    omitted (their contradiction may be recorded in a form the textual
    constraint syntax cannot express).
    """
    attrs = ", ".join(
        f"{a.name}:{'T' if a.temporal else 'D'}"
        for a in relation.schema.attributes
    )
    lines = [f"relation {name}({attrs})"]
    for i, gtuple in enumerate(relation.tuples):
        if not gtuple.dbm.copy().close():
            continue
        lines.append(format_tuple(relation, i))
    return "\n".join(lines) + "\n"


def parse_header(line: str) -> tuple[str, Schema]:
    """Parse a ``relation Name(attr:T, ...)`` header line."""
    line = line.strip()
    if not line.startswith("relation "):
        raise ParseError(f"expected a relation header, got {line!r}")
    rest = line[len("relation "):].strip()
    open_paren = rest.find("(")
    if open_paren < 0 or not rest.endswith(")"):
        raise ParseError(f"malformed relation header: {line!r}")
    name = rest[:open_paren].strip()
    if not name:
        raise ParseError("relation header is missing a name")
    attrs: list[Attribute] = []
    body = rest[open_paren + 1 : -1].strip()
    if body:
        for piece in body.split(","):
            piece = piece.strip()
            if ":" not in piece:
                raise ParseError(f"attribute {piece!r} needs a :T or :D kind")
            attr_name, kind = piece.rsplit(":", 1)
            kind = kind.strip().upper()
            if kind not in {"T", "D"}:
                raise ParseError(f"unknown attribute kind {kind!r}")
            attrs.append(Attribute(attr_name.strip(), temporal=kind == "T"))
    return name, Schema(tuple(attrs))


def parse_tuple_line(relation: GeneralizedRelation, line: str) -> None:
    """Parse one tuple line and add it to ``relation``."""
    line = line.strip()
    if not line.startswith("["):
        raise ParseError(f"tuple line must start with '[': {line!r}")
    close = line.find("]")
    if close < 0:
        raise ParseError(f"unterminated lrp vector: {line!r}")
    lrp_body = line[1:close].strip()
    lrp_texts = [t.strip() for t in lrp_body.split(",")] if lrp_body else []
    rest = line[close + 1 :].strip()
    constraints = ""
    data_text = ""
    if rest.startswith(":"):
        rest = rest[1:]
        if "|" in rest:
            constraints, data_text = rest.split("|", 1)
        else:
            constraints = rest
    elif rest.startswith("|"):
        data_text = rest[1:]
    elif rest:
        raise ParseError(f"unexpected text after lrp vector: {rest!r}")
    data = _split_data(data_text) if data_text.strip() else []
    relation.add_tuple(lrp_texts, constraints.strip(), data)


def _split_data(text: str) -> list[str]:
    """Split comma-separated data values, honouring double quotes."""
    values: list[str] = []
    current: list[str] = []
    in_quotes = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and in_quotes and i + 1 < len(text) and text[i + 1] == '"':
            current.append('"')
            i += 2
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
        elif ch == "," and not in_quotes:
            values.append(_unquote("".join(current)))
            current = []
        else:
            current.append(ch)
        i += 1
    if in_quotes:
        raise ParseError(f"unterminated quote in data values: {text!r}")
    values.append(_unquote("".join(current)))
    return values


def loads(text: str) -> tuple[str, GeneralizedRelation]:
    """Parse a relation from its textual form; returns (name, relation)."""
    lines = [
        line
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise ParseError("empty relation text")
    name, schema = parse_header(lines[0])
    relation = GeneralizedRelation.empty(schema)
    for line in lines[1:]:
        parse_tuple_line(relation, line)
    return name, relation


def dumps(relation: GeneralizedRelation, name: str = "r") -> str:
    """Alias of :func:`format_relation` for symmetry with :func:`loads`."""
    return format_relation(relation, name)


def loads_all(text: str) -> dict[str, GeneralizedRelation]:
    """Parse a file holding several relations (multiple headers)."""
    lines = [
        line
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    out: dict[str, GeneralizedRelation] = {}
    current: GeneralizedRelation | None = None
    current_name: str | None = None
    for line in lines:
        if line.strip().startswith("relation "):
            current_name, schema = parse_header(line)
            if current_name in out:
                raise ParseError(f"duplicate relation {current_name!r}")
            current = GeneralizedRelation.empty(schema)
            out[current_name] = current
        else:
            if current is None:
                raise ParseError(
                    "tuple line before any relation header: " + line.strip()
                )
            parse_tuple_line(current, line)
    if not out:
        raise ParseError("no relations found")
    return out


def dumps_all(relations: dict[str, GeneralizedRelation]) -> str:
    """Render several relations into one file."""
    return "\n".join(
        format_relation(rel, name) for name, rel in relations.items()
    )
