"""Difference-bound matrices: the engine for restricted constraints.

The paper's *restricted constraints* (Section 2.1) are exactly integer
difference constraints::

    Xi <= Xj + a     Xi = Xj + a     Xi <= a     Xi >= a     Xi = a

A conjunction of such constraints over temporal attributes ``X1..Xm`` is
represented here as a difference-bound matrix (DBM) over ``m`` variables
plus an implicit zero variable at index 0: entry ``b[i][j] = a`` encodes
``X_i - X_j <= a`` (with ``X_0 == 0``), and ``None`` encodes +infinity.

The DBM gives us, in one structure, everything Appendix A needs:

* *strongest-conjunct reduction* — adding a constraint keeps the minimum
  bound, so a system never holds more than ``m(m+1)`` atomic constraints,
  the bound the appendix uses;
* *satisfiability* — the Floyd–Warshall closure has a negative diagonal
  entry iff the constraint graph has a negative cycle; for difference
  systems with integer bounds, real and integer satisfiability coincide;
* *canonical form* — the closure is a normal form, so equality of closed
  matrices is equivalence of constraint systems;
* *projection* — dropping a row/column of the closure is exactly
  Fourier–Motzkin elimination for difference constraints, and is
  integer-exact when the variables range over all of Z (which is why the
  paper normalizes before projecting: normalization moves from lattice-
  valued attributes to free integer repetition counts).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.perf.cache import closure_cache
from repro.perf.config import PERF_COUNTERS, get_config
from repro.core.errors import ReproValueError

Bound = int | None  # None encodes +infinity


def min_bound(a: Bound, b: Bound) -> Bound:
    """Minimum of two upper bounds, treating ``None`` as +infinity."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a <= b else b


def add_bound(a: Bound, b: Bound) -> Bound:
    """Sum of two upper bounds, treating ``None`` as +infinity."""
    if a is None or b is None:
        return None
    return a + b


def close_batch(dbms: Sequence["DBM"]) -> list[bool]:
    """Close many DBMs at once; return their satisfiability verdicts.

    Semantically equal to ``[dbm.close() for dbm in dbms]`` but routed
    through :mod:`repro.perf.kernel`, which packs same-dimension systems
    into one array and closes them with a single vectorized
    Floyd–Warshall sweep when the numpy backend is active.  With the
    pure-Python backend this *is* the scalar loop.
    """
    from repro.perf import kernel

    return kernel.close_batch(list(dbms))


class DBM:
    """A conjunction of difference constraints over ``size`` variables.

    Index 0 is the implicit zero variable; user variables are 1-based
    internally, but every public method takes 0-based variable indices
    and translates.
    """

    __slots__ = ("_n", "_b", "_closed", "_dirty")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ReproValueError("DBM size must be >= 0")
        self._n = size + 1
        self._b: list[list[Bound]] = [
            [0 if i == j else None for j in range(self._n)]
            for i in range(self._n)
        ]
        self._closed = True  # the unconstrained system is trivially closed
        # Entries written since the matrix was last closed; None means
        # the edit history is unknown and only a full closure is safe.
        self._dirty: list[tuple[int, int]] | None = []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The number of (non-zero) variables."""
        return self._n - 1

    def copy(self) -> DBM:
        """Return an independent copy.

        Closure state travels with the copy: a copied already-closed
        matrix answers :meth:`close` in O(1), and pending dirty edges
        stay eligible for the incremental closure.
        """
        out = DBM.__new__(DBM)
        out._n = self._n
        out._b = [row[:] for row in self._b]
        out._closed = self._closed
        out._dirty = None if self._dirty is None else list(self._dirty)
        return out

    def _set(self, i: int, j: int, bound: int) -> None:
        current = self._b[i][j]
        if current is None or bound < current:
            self._b[i][j] = bound
            self._closed = False
            dirty = self._dirty
            if dirty is not None:
                if len(dirty) < self._n:
                    dirty.append((i, j))
                else:
                    # Too many edits for the incremental closure to beat
                    # Floyd–Warshall; stop tracking.
                    self._dirty = None

    def add_difference(self, i: int, j: int, bound: int) -> None:
        """Add ``X_i - X_j <= bound`` (0-based variable indices)."""
        self._check_var(i)
        self._check_var(j)
        if i == j:
            if bound < 0:
                # X_i - X_i <= negative: immediately unsatisfiable.
                self._set(0, 0, min_bound(self._b[0][0], bound))
            return
        self._set(i + 1, j + 1, bound)

    def add_upper(self, i: int, bound: int) -> None:
        """Add ``X_i <= bound``."""
        self._check_var(i)
        self._set(i + 1, 0, bound)

    def add_lower(self, i: int, bound: int) -> None:
        """Add ``X_i >= bound``."""
        self._check_var(i)
        self._set(0, i + 1, -bound)

    def add_equality(self, i: int, j: int, diff: int) -> None:
        """Add ``X_i = X_j + diff``."""
        self.add_difference(i, j, diff)
        self.add_difference(j, i, -diff)

    def add_value(self, i: int, value: int) -> None:
        """Add ``X_i = value``."""
        self.add_upper(i, value)
        self.add_lower(i, value)

    def _check_var(self, i: int) -> None:
        if not 0 <= i < self._n - 1:
            raise IndexError(f"variable index {i} out of range 0..{self._n - 2}")

    # ------------------------------------------------------------------
    # closure and satisfiability
    # ------------------------------------------------------------------

    def close(self) -> bool:
        """Close the system; return whether it is satisfiable.

        After a successful closure every entry holds the tightest implied
        bound.  An unsatisfiable system is detected by a negative value on
        the diagonal and left in that state (callers should discard it).

        ``close`` is idempotent (a ``_closed`` flag makes repeats O(n)),
        consults the global interning cache when enabled (identical
        written systems are closed once process-wide), and tightens
        incrementally in O(d·n²) when only ``d < n`` bounds were written
        since the last closure, instead of re-running the O(n³)
        Floyd–Warshall pass.
        """
        if self._closed:
            return self.is_satisfiable()
        cache = closure_cache()
        key = None
        if cache is not None:
            key = (self._n, tuple(tuple(row) for row in self._b))
            hit = cache.get(key)
            if hit is not None:
                PERF_COUNTERS["closure_cache_hit"] += 1
                sat, rows = hit
                self._b = [list(row) for row in rows]
                self._closed = True
                self._dirty = []
                return sat
            PERF_COUNTERS["closure_cache_miss"] += 1
        dirty = self._dirty
        if (
            dirty is not None
            and dirty
            and len(set(dirty)) < self._n
            and get_config().incremental_enabled
        ):
            PERF_COUNTERS["closure_incremental"] += 1
            self._close_incremental(list(dict.fromkeys(dirty)))
        else:
            PERF_COUNTERS["closure_full"] += 1
            self._close_full()
        self._closed = True
        self._dirty = []
        sat = self.is_satisfiable()
        if cache is not None:
            cache.put(key, (sat, tuple(tuple(row) for row in self._b)))
        return sat

    def _close_full(self) -> None:
        """The classic O(n³) Floyd–Warshall tightening pass."""
        n = self._n
        b = self._b
        for k in range(n):
            row_k = b[k]
            for i in range(n):
                b_ik = b[i][k]
                if b_ik is None:
                    continue
                row_i = b[i]
                for j in range(n):
                    b_kj = row_k[j]
                    if b_kj is None:
                        continue
                    candidate = b_ik + b_kj
                    current = row_i[j]
                    if current is None or candidate < current:
                        row_i[j] = candidate

    def _close_incremental(self, edges: list[tuple[int, int]]) -> None:
        """Re-close after writing only ``edges`` into a closed matrix.

        For each written entry ``b[u][v] = w`` (the constraint
        ``X_u - X_v <= w``), the closure of the old matrix plus that
        single edge is ``b'[i][j] = min(b[i][j], b[i][u] + w + b[v][j])``
        — one O(n²) sweep.  Processing the written edges sequentially is
        exact: each sweep uses entries that are already closed over the
        previously processed edges, and raw not-yet-processed writes only
        ever make entries tighter than required, never looser.
        """
        n = self._n
        b = self._b
        for u, v in edges:
            w = b[u][v]
            if w is None:  # pragma: no cover - dirty writes are finite
                continue
            row_v = b[v]
            for i in range(n):
                b_iu = b[i][u]
                if b_iu is None:
                    continue
                head = b_iu + w
                row_i = b[i]
                for j in range(n):
                    b_vj = row_v[j]
                    if b_vj is None:
                        continue
                    candidate = head + b_vj
                    current = row_i[j]
                    if current is None or candidate < current:
                        row_i[j] = candidate

    def is_satisfiable(self) -> bool:
        """Return whether the (closed) system has an integer solution.

        Call :meth:`close` first if constraints were added since the last
        closure; this method closes on demand for safety.
        """
        if not self._closed:
            return self.close()
        for i in range(self._n):
            bound = self._b[i][i]
            if bound is not None and bound < 0:
                return False
        return True

    def canonical_key(self) -> tuple:
        """Return a hashable key identifying the closed constraint system.

        Two DBMs over the same variables with equal keys denote the same
        set of points (the closure is a canonical form for satisfiable
        difference systems).  The key is computed on a copy: the stored
        bounds stay exactly as written, which matters for negation —
        negating the closure would produce up to ``m(m+1)`` disjuncts
        where negating the written constraints produces only as many as
        were stated.
        """
        probe = self if self._closed else self.copy()
        if not probe.close():
            return ("UNSAT", self._n - 1)
        return tuple(tuple(row) for row in probe._b)

    def equivalent(self, other: DBM) -> bool:
        """Return whether both systems denote the same point set."""
        if self._n != other._n:
            return False
        return self.canonical_key() == other.canonical_key()

    def implies(self, other: DBM) -> bool:
        """Return whether every solution of ``self`` satisfies ``other``.

        An unsatisfiable system implies anything.  Neither operand is
        mutated (closures run on copies): callers rely on stored bounds
        staying exactly as written.
        """
        if self._n != other._n:
            raise ReproValueError("DBM sizes differ")
        mine_probe = self if self._closed else self.copy()
        if not mine_probe.close():
            return True
        probe = other.copy()
        if not probe.close():
            return False
        mine = mine_probe._b
        theirs = probe._b
        for i in range(self._n):
            for j in range(self._n):
                b_other = theirs[i][j]
                if b_other is None:
                    continue
                b_mine = mine[i][j]
                if b_mine is None or b_mine > b_other:
                    return False
        return True

    # ------------------------------------------------------------------
    # combination and transformation
    # ------------------------------------------------------------------

    def intersect(self, other: DBM) -> DBM:
        """Return the conjunction of both systems (pointwise min)."""
        if self._n != other._n:
            raise ReproValueError("DBM sizes differ")
        out = self.copy()
        for i in range(self._n):
            for j in range(self._n):
                merged = min_bound(out._b[i][j], other._b[i][j])
                if merged != out._b[i][j]:
                    out._set(i, j, merged)
        return out

    def project(self, keep: Sequence[int]) -> DBM:
        """Project onto the 0-based variables in ``keep`` (order preserved).

        The system is closed first; dropping rows/columns of the closure
        is the exact Fourier–Motzkin eliminant for difference constraints.
        Projection of an unsatisfiable system is unsatisfiable.
        """
        for i in keep:
            self._check_var(i)
        if not self.close():
            out = DBM(len(keep))
            out._b[0][0] = -1  # mark unsatisfiable
            out._closed = True
            return out
        out = DBM(len(keep))
        old_indices = [0] + [i + 1 for i in keep]
        out._b = [
            [self._b[oi][oj] for oj in old_indices] for oi in old_indices
        ]
        out._closed = True
        return out

    def permute(self, new_order: Sequence[int]) -> DBM:
        """Reorder variables: new variable ``p`` is old variable ``new_order[p]``."""
        if sorted(new_order) != list(range(self._n - 1)):
            raise ReproValueError("new_order must be a permutation of the variables")
        return self.project(new_order)

    def extend(self, extra: int) -> DBM:
        """Return a copy with ``extra`` fresh, unconstrained variables appended.

        Appending unconstrained variables preserves closure: no path can
        improve through a variable that has no finite bounds.
        """
        if extra < 0:
            raise ReproValueError("extra must be >= 0")
        out = DBM(self.size + extra)
        for i in range(self._n):
            for j in range(self._n):
                out._b[i][j] = self._b[i][j]
        out._closed = self._closed
        out._dirty = None if not self._closed else []
        return out

    def shift_variable(self, i: int, delta: int) -> DBM:
        """Substitute ``X_i := X_i + delta`` (the new variable's value set shifts by +delta).

        If ``Y = X_i + delta`` then a constraint ``X_i - X_j <= a`` becomes
        ``Y - X_j <= a + delta`` and ``X_j - X_i <= a`` becomes
        ``X_j - Y <= a - delta``.
        """
        self._check_var(i)
        out = self.copy()
        row = i + 1
        for j in range(self._n):
            if j == row:
                continue
            if out._b[row][j] is not None:
                out._b[row][j] += delta
            if out._b[j][row] is not None:
                out._b[j][row] -= delta
        return out

    def scale_down(self, divisor: int) -> DBM:
        """Divide every finite bound by ``divisor`` (must divide exactly).

        Used when mapping normalized attribute-space constraints (all
        bounds multiples of the common period ``k``) onto the repetition
        counters ``n_i = (X_i - c_i) / k``.
        """
        if divisor <= 0:
            raise ReproValueError("divisor must be positive")
        out = self.copy()
        for i in range(self._n):
            for j in range(self._n):
                bound = out._b[i][j]
                if bound is None:
                    continue
                if bound % divisor != 0:
                    raise ReproValueError(
                        f"bound {bound} not a multiple of {divisor}; "
                        "normalize before scaling"
                    )
                out._b[i][j] = bound // divisor
        return out

    def scale_up(self, factor: int) -> DBM:
        """Multiply every finite bound by ``factor`` (inverse of scale_down)."""
        if factor <= 0:
            raise ReproValueError("factor must be positive")
        out = self.copy()
        for i in range(self._n):
            for j in range(self._n):
                if out._b[i][j] is not None:
                    out._b[i][j] *= factor
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def bound(self, i: int, j: int) -> Bound:
        """Return the stored bound on ``X_i - X_j`` (0-based; -1 = zero var)."""
        return self._b[i + 1][j + 1]

    def upper(self, i: int) -> Bound:
        """Tightest implied upper bound on ``X_i`` (closes the system)."""
        self.close()
        return self._b[i + 1][0]

    def lower(self, i: int) -> Bound:
        """Tightest implied lower bound on ``X_i`` (closes the system)."""
        self.close()
        bound = self._b[0][i + 1]
        return None if bound is None else -bound

    def satisfied_by(self, point: Sequence[int]) -> bool:
        """Return whether the concrete point satisfies every constraint."""
        if len(point) != self._n - 1:
            raise ReproValueError(
                f"point has {len(point)} coordinates, expected {self._n - 1}"
            )
        values = (0, *point)
        for i in range(self._n):
            row = self._b[i]
            vi = values[i]
            for j in range(self._n):
                bound = row[j]
                if bound is not None and vi - values[j] > bound:
                    return False
        return True

    def solution(self) -> list[int] | None:
        """Return one integer solution, or ``None`` when unsatisfiable.

        Uses the standard shortest-path potential: after closure, setting
        ``X_i`` to its tightest upper bound ``b[i][0]`` satisfies every
        constraint (triangle inequality of the closure).  Variables with
        no finite upper bound are first capped by a bound large enough to
        exceed every implied lower bound, which cannot introduce a
        negative cycle.
        """
        if not self.close():
            return None
        big = 1 + sum(
            abs(bound) for row in self._b for bound in row if bound is not None
        )
        probe = self
        if any(self._b[i][0] is None for i in range(1, self._n)):
            probe = self.copy()
            for i in range(1, self._n):
                if probe._b[i][0] is None:
                    probe._set(i, 0, big)
            if not probe.close():  # pragma: no cover - cap cannot conflict
                raise AssertionError("capping unbounded variables broke the DBM")
        result = [probe._b[i][0] for i in range(1, probe._n)]
        assert self.satisfied_by(result)
        return result

    def to_buffer(self) -> list[float]:
        """Flat float64 encoding of the bound matrix, row-major.

        Absent bounds (``None``) become ``+inf``.  Used to place many
        matrices in one contiguous buffer (batched closure, shared
        memory).  Raises when a bound is too large for float64 to hold
        exactly; callers fall back to object serialization then.
        """
        out: list[float] = []
        for row in self._b:
            for bound in row:
                if bound is None:
                    out.append(float("inf"))
                elif -(1 << 53) <= bound <= (1 << 53):
                    out.append(float(bound))
                else:
                    raise ReproValueError(
                        f"bound {bound} exceeds exact float64 range"
                    )
        return out

    @classmethod
    def from_buffer(
        cls, size: int, buffer: Sequence[float], closed: bool = False
    ) -> DBM:
        """Rebuild a DBM from a :meth:`to_buffer` encoding.

        ``closed`` restores the closure flag recorded at export time, so
        a matrix that was closed before packing answers :meth:`close` in
        O(n) after the round-trip.
        """
        n = size + 1
        if len(buffer) != n * n:
            raise ReproValueError(
                f"buffer holds {len(buffer)} entries, expected {n * n}"
            )
        inf = float("inf")
        out = cls.__new__(cls)
        out._n = n
        out._b = [
            [
                None if value == inf else int(value)
                for value in buffer[i * n : (i + 1) * n]
            ]
            for i in range(n)
        ]
        out._closed = closed
        out._dirty = [] if closed else None
        return out

    def iter_bounds(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(i, j, bound)`` for every finite stored bound.

        Indices follow the internal convention: -1 is the zero variable,
        otherwise 0-based user variables.  Diagonal entries are skipped.
        """
        for i in range(self._n):
            for j in range(self._n):
                if i == j:
                    continue
                bound = self._b[i][j]
                if bound is not None:
                    yield (i - 1, j - 1, bound)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DBM):
            return NotImplemented
        return self.equivalent(other)

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        parts = []
        for i, j, bound in self.iter_bounds():
            left = "0" if i < 0 else f"X{i}"
            right = "0" if j < 0 else f"X{j}"
            parts.append(f"{left} - {right} <= {bound}")
        return f"DBM({self.size}: {'; '.join(parts) or 'true'})"
