"""User-facing restricted constraints (Section 2.1 of the paper).

Restricted atomic constraints relate at most two temporal attributes with
unit coefficients::

    Xi <= Xj + a     Xi = Xj + a     Xi <= a     Xi >= a     Xi = a

This module defines an attribute-name-level representation of such atoms
(plus the strict forms ``<`` and ``>``, which over Z are sugar for the
non-strict ones), a parser for the concrete syntax used in the paper's
tables, and conversions to and from the index-based :class:`~repro.core.dbm.DBM`
representation.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from enum import Enum

from repro.core.dbm import DBM
from repro.core.errors import ConstraintError, ParseError


class Op(Enum):
    """Comparison operators on the temporal sort."""

    LE = "<="
    GE = ">="
    EQ = "="
    LT = "<"
    GT = ">"

    def flipped(self) -> Op:
        """The operator obtained by swapping the two sides."""
        return {
            Op.LE: Op.GE,
            Op.GE: Op.LE,
            Op.EQ: Op.EQ,
            Op.LT: Op.GT,
            Op.GT: Op.LT,
        }[self]


@dataclass(frozen=True)
class VarVarAtom:
    """``left op right + const`` over two temporal attributes."""

    left: str
    op: Op
    right: str
    const: int = 0

    def __str__(self) -> str:
        if self.const == 0:
            rhs = self.right
        elif self.const > 0:
            rhs = f"{self.right} + {self.const}"
        else:
            rhs = f"{self.right} - {-self.const}"
        return f"{self.left} {self.op.value} {rhs}"


@dataclass(frozen=True)
class VarConstAtom:
    """``left op const`` over one temporal attribute."""

    left: str
    op: Op
    const: int

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.const}"


Atom = VarVarAtom | VarConstAtom

_ATOM_RE = re.compile(
    r"""^\s*
    (?P<left>[A-Za-z_][A-Za-z_0-9]*)\s*
    (?P<op><=|>=|=|<|>)\s*
    (?P<rhs>.+?)\s*$""",
    re.VERBOSE,
)
_RHS_VAR_RE = re.compile(
    r"""^\s*
    (?P<var>[A-Za-z_][A-Za-z_0-9]*)\s*
    (?:(?P<sign>[+-])\s*(?P<const>[+-]?\d+)\s*)?$""",
    re.VERBOSE,
)
_RHS_CONST_RE = re.compile(r"^\s*(?P<const>[+-]?\d+)\s*$")


def parse_atom(text: str) -> Atom:
    """Parse one restricted atomic constraint.

    Accepts the paper's forms, e.g. ``"X1 <= X2 + 4"``, ``"X1 = X2 - 2"``,
    ``"X2 >= 2"``, as well as strict comparisons.
    """
    m = _ATOM_RE.match(text)
    if m is None:
        raise ParseError(f"cannot parse constraint atom: {text!r}")
    left = m.group("left")
    op = Op(m.group("op"))
    rhs = m.group("rhs")
    const_match = _RHS_CONST_RE.match(rhs)
    if const_match is not None:
        return VarConstAtom(left=left, op=op, const=int(const_match.group("const")))
    var_match = _RHS_VAR_RE.match(rhs)
    if var_match is None:
        raise ParseError(f"cannot parse right-hand side: {rhs!r}")
    const = 0
    if var_match.group("const") is not None:
        const = int(var_match.group("const"))
        if var_match.group("sign") == "-":
            const = -const
    return VarVarAtom(left=left, op=op, right=var_match.group("var"), const=const)


def parse_atoms(text: str) -> list[Atom]:
    """Parse a conjunction separated by ``&``, ``,``, ``and``, or ``∧``."""
    stripped = text.strip()
    if not stripped or stripped.lower() == "true":
        return []
    parts = re.split(r"&|,|∧|/\\|\band\b", stripped)
    return [parse_atom(part) for part in parts if part.strip()]


def atoms_to_dbm(
    atoms: Iterable[Atom], attribute_order: Sequence[str]
) -> DBM:
    """Compile atoms into a :class:`DBM` over ``attribute_order``.

    Strict comparisons are tightened to non-strict integer form
    (``a < b`` becomes ``a <= b - 1``), matching the paper's treatment.
    """
    index = {name: i for i, name in enumerate(attribute_order)}
    if len(index) != len(attribute_order):
        raise ConstraintError("attribute names must be distinct")
    dbm = DBM(len(attribute_order))
    for atom in atoms:
        if atom.left not in index:
            raise ConstraintError(f"unknown attribute {atom.left!r} in {atom}")
        i = index[atom.left]
        if isinstance(atom, VarConstAtom):
            _apply_var_const(dbm, i, atom.op, atom.const)
        else:
            if atom.right not in index:
                raise ConstraintError(
                    f"unknown attribute {atom.right!r} in {atom}"
                )
            j = index[atom.right]
            _apply_var_var(dbm, i, j, atom.op, atom.const)
    return dbm


def _apply_var_const(dbm: DBM, i: int, op: Op, const: int) -> None:
    if op is Op.LE:
        dbm.add_upper(i, const)
    elif op is Op.LT:
        dbm.add_upper(i, const - 1)
    elif op is Op.GE:
        dbm.add_lower(i, const)
    elif op is Op.GT:
        dbm.add_lower(i, const + 1)
    else:
        dbm.add_value(i, const)


def _apply_var_var(dbm: DBM, i: int, j: int, op: Op, const: int) -> None:
    if i == j:
        # Xi op Xi + const degenerates to a comparison between 0 and const.
        holds = {
            Op.LE: 0 <= const,
            Op.LT: 0 < const,
            Op.GE: 0 >= const,
            Op.GT: 0 > const,
            Op.EQ: const == 0,
        }[op]
        if not holds:
            dbm.add_difference(i, i, -1)  # mark unsatisfiable
        return
    if op is Op.LE:
        dbm.add_difference(i, j, const)
    elif op is Op.LT:
        dbm.add_difference(i, j, const - 1)
    elif op is Op.GE:
        dbm.add_difference(j, i, -const)
    elif op is Op.GT:
        dbm.add_difference(j, i, -const - 1)
    else:
        dbm.add_equality(i, j, const)


def dbm_to_atoms(dbm: DBM, attribute_order: Sequence[str]) -> list[Atom]:
    """Render the finite bounds of ``dbm`` as attribute-name atoms.

    Pairs of matching bounds are merged into equalities for readability.
    The result lists each constraint once, using ``<=``/``>=``/``=`` only.
    """
    if dbm.size != len(attribute_order):
        raise ConstraintError("attribute count does not match DBM size")
    bounds = {(i, j): bound for i, j, bound in dbm.iter_bounds()}
    atoms: list[Atom] = []
    emitted: set[tuple[int, int]] = set()
    for (i, j), bound in sorted(bounds.items()):
        if (i, j) in emitted:
            continue
        if i >= 0 and j >= 0:
            if bounds.get((j, i)) == -bound:
                atoms.append(
                    VarVarAtom(attribute_order[i], Op.EQ, attribute_order[j], bound)
                )
                emitted.add((j, i))
            else:
                atoms.append(
                    VarVarAtom(attribute_order[i], Op.LE, attribute_order[j], bound)
                )
        elif j < 0:
            # X_i - 0 <= bound, i.e. X_i <= bound.
            if bounds.get((-1, i)) == -bound:
                atoms.append(VarConstAtom(attribute_order[i], Op.EQ, bound))
                emitted.add((-1, i))
            else:
                atoms.append(VarConstAtom(attribute_order[i], Op.LE, bound))
        else:
            # 0 - X_j <= bound, i.e. X_j >= -bound.
            if bounds.get((j, -1)) == -bound:
                atoms.append(VarConstAtom(attribute_order[j], Op.EQ, -bound))
                emitted.add((j, -1))
            else:
                atoms.append(VarConstAtom(attribute_order[j], Op.GE, -bound))
    return atoms


def negate_atom_as_dbm_updates(
    atom_index_form: tuple[int, int, int], size: int
) -> DBM:
    """Return a DBM of ``size`` variables encoding the negation of one bound.

    ``atom_index_form`` is an ``(i, j, bound)`` triple in
    :meth:`DBM.iter_bounds` convention (-1 is the zero variable).  The
    negation of ``X_i - X_j <= a`` over Z is ``X_j - X_i <= -a - 1``.
    """
    i, j, bound = atom_index_form
    out = DBM(size)
    neg = -bound - 1
    if i >= 0 and j >= 0:
        out.add_difference(j, i, neg)
    elif j < 0:
        # negation of X_i <= bound is X_i >= bound + 1
        out.add_lower(i, bound + 1)
    else:
        # negation of -X_j <= bound (X_j >= -bound) is X_j <= -bound - 1
        out.add_upper(j, -bound - 1)
    return out
