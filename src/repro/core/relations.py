"""Generalized relations and their schemas (Definition 2.3).

A generalized relation is a finite set of generalized tuples sharing one
schema.  Schemas name every attribute and flag it as temporal or data;
the temporal attributes of each tuple line up positionally with the
schema's temporal attributes, likewise data attributes.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.core.constraints import Atom, atoms_to_dbm, parse_atoms
from repro.core.errors import SchemaError
from repro.core.lrp import LRP
from repro.core.tuples import GeneralizedTuple


@dataclass(frozen=True)
class Attribute:
    """A named attribute, either temporal (integer-valued) or data."""

    name: str
    temporal: bool = True

    def __str__(self) -> str:
        return f"{self.name}:{'T' if self.temporal else 'D'}"


@dataclass(frozen=True)
class Schema:
    """An ordered list of distinct attributes."""

    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")

    @classmethod
    def make(
        cls,
        temporal: Sequence[str] = (),
        data: Sequence[str] = (),
    ) -> Schema:
        """Build a schema with the temporal attributes first, then data."""
        attrs = [Attribute(name, temporal=True) for name in temporal]
        attrs += [Attribute(name, temporal=False) for name in data]
        return cls(attributes=tuple(attrs))

    # Schemas are immutable, so the derived name/arity views are cached
    # on first use (``cached_property`` writes straight into ``__dict__``,
    # which the frozen dataclass permits); ``add`` consults the arities
    # on every insertion.

    @cached_property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in order."""
        return tuple(a.name for a in self.attributes)

    @cached_property
    def temporal_names(self) -> tuple[str, ...]:
        """Names of the temporal attributes, in order."""
        return tuple(a.name for a in self.attributes if a.temporal)

    @cached_property
    def data_names(self) -> tuple[str, ...]:
        """Names of the data attributes, in order."""
        return tuple(a.name for a in self.attributes if not a.temporal)

    @cached_property
    def temporal_arity(self) -> int:
        """Number of temporal attributes."""
        return len(self.temporal_names)

    @cached_property
    def data_arity(self) -> int:
        """Number of data attributes."""
        return len(self.data_names)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute named {name!r} in schema {self}")

    def has(self, name: str) -> bool:
        """Whether the schema contains an attribute with this name."""
        return any(a.name == name for a in self.attributes)

    def temporal_index(self, name: str) -> int:
        """Position of ``name`` among the temporal attributes."""
        for i, attr_name in enumerate(self.temporal_names):
            if attr_name == name:
                return i
        raise SchemaError(f"no temporal attribute named {name!r}")

    def data_index(self, name: str) -> int:
        """Position of ``name`` among the data attributes."""
        for i, attr_name in enumerate(self.data_names):
            if attr_name == name:
                return i
        raise SchemaError(f"no data attribute named {name!r}")

    def point_order(self) -> tuple[tuple[bool, int], ...]:
        """For each attribute: (is_temporal, index within its kind).

        Used to interleave temporal and data components when rendering
        concrete points in schema order.
        """
        t = d = 0
        out = []
        for attr in self.attributes:
            if attr.temporal:
                out.append((True, t))
                t += 1
            else:
                out.append((False, d))
                d += 1
        return tuple(out)

    def __len__(self) -> int:
        return len(self.attributes)

    def __str__(self) -> str:
        return "(" + ", ".join(str(a) for a in self.attributes) + ")"


class GeneralizedRelation:
    """A finite set of generalized tuples over a common schema.

    The tuple list is deduplicated by canonical key on insertion, which
    implements the cheap part of the paper's "eliminate redundancies"
    remark (Section 3.1); deeper subsumption-based simplification lives
    in :mod:`repro.core.simplify`.
    """

    __slots__ = ("schema", "_tuples", "_keys")

    def __init__(
        self,
        schema: Schema,
        tuples: Iterable[GeneralizedTuple] = (),
    ) -> None:
        self.schema = schema
        self._tuples: list[GeneralizedTuple] = []
        self._keys: set[tuple] = set()
        for t in tuples:
            self.add(t)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema) -> GeneralizedRelation:
        """The empty relation over ``schema``."""
        return cls(schema)

    @classmethod
    def universe(cls, schema: Schema) -> GeneralizedRelation:
        """The all-of-Z^k relation; requires a purely temporal schema."""
        if schema.data_arity != 0:
            raise SchemaError(
                "universe relation needs a purely temporal schema; "
                "data attributes have no finite universe"
            )
        free = GeneralizedTuple.make(
            [LRP.make(0, 1) for _ in range(schema.temporal_arity)]
        )
        return cls(schema, [free])

    def add(self, gtuple: GeneralizedTuple) -> None:
        """Insert a tuple (deduplicated by canonical key)."""
        if gtuple.temporal_arity != self.schema.temporal_arity:
            raise SchemaError(
                f"tuple temporal arity {gtuple.temporal_arity} does not "
                f"match schema {self.schema}"
            )
        if gtuple.data_arity != self.schema.data_arity:
            raise SchemaError(
                f"tuple data arity {gtuple.data_arity} does not match "
                f"schema {self.schema}"
            )
        key = gtuple.canonical_key()
        if key not in self._keys:
            self._keys.add(key)
            self._tuples.append(gtuple)

    def add_tuple(
        self,
        lrps: Sequence[LRP | int | str],
        constraints: str | Sequence[Atom] = "",
        data: Sequence[Hashable] = (),
    ) -> None:
        """Convenience: build and insert a tuple from friendly pieces.

        ``constraints`` may be a string in the paper's syntax (referring
        to the schema's temporal attribute names) or a sequence of parsed
        atoms.
        """
        atoms = (
            parse_atoms(constraints)
            if isinstance(constraints, str)
            else list(constraints)
        )
        dbm = atoms_to_dbm(atoms, self.schema.temporal_names)
        self.add(GeneralizedTuple.make(lrps, data=data, dbm=dbm))

    def copy(self) -> GeneralizedRelation:
        """A shallow, independently mutable copy of this relation.

        The copy holds the same (immutable) generalized tuples but its
        own tuple list and key set, so insertions into either side never
        show through to the other — the primitive the MVCC catalog core
        (:mod:`repro.query.catalog`) uses to freeze committed versions.
        """
        out = GeneralizedRelation.empty(self.schema)
        out._tuples = list(self._tuples)
        out._keys = set(self._keys)
        return out

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def tuples(self) -> tuple[GeneralizedTuple, ...]:
        """The stored generalized tuples."""
        return tuple(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[GeneralizedTuple]:
        return iter(self._tuples)

    def __eq__(self, other: object) -> bool:
        """Syntactic equality: same schema and same set of canonical tuples.

        For semantic equality use :func:`repro.core.algebra.equivalent`.
        """
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return self.schema == other.schema and self._keys == other._keys

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._keys)))

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    def contains(
        self,
        temporal: Sequence[int],
        data: Sequence[Hashable] = (),
    ) -> bool:
        """Whether the concrete (temporal, data) point is in the relation."""
        return any(t.contains(temporal, data) for t in self._tuples)

    def contains_point(self, point: Sequence) -> bool:
        """Membership for a point given in *schema order* (mixed sorts)."""
        temporal, data = self.split_point(point)
        return self.contains(temporal, data)

    def split_point(self, point: Sequence) -> tuple[tuple[int, ...], tuple]:
        """Split a schema-order point into (temporal, data) components."""
        if len(point) != len(self.schema):
            raise SchemaError(
                f"point has {len(point)} components, schema has "
                f"{len(self.schema)}"
            )
        temporal = []
        data = []
        for value, attr in zip(point, self.schema.attributes):
            if attr.temporal:
                temporal.append(value)
            else:
                data.append(value)
        return tuple(temporal), tuple(data)

    def join_point(
        self, temporal: Sequence[int], data: Sequence
    ) -> tuple:
        """Inverse of :meth:`split_point`: interleave into schema order."""
        out = []
        for is_temporal, idx in self.schema.point_order():
            out.append(temporal[idx] if is_temporal else data[idx])
        return tuple(out)

    def enumerate(self, low: int, high: int) -> Iterator[tuple]:
        """Yield concrete points (schema order) with temporal values in
        ``[low, high]``, deduplicated across tuples.

        An inverted horizon (``low > high``) denotes the empty window and
        yields nothing — uniformly, including for zero-arity schemas.
        The same convention holds everywhere a window is taken:
        :meth:`snapshot`, :meth:`FiniteRelation.materialize
        <repro.baseline.finite.FiniteRelation.materialize>`, and
        :func:`repro.storage.csvio.export_window`.
        """
        if low > high:
            return
        seen: set[tuple] = set()
        for gtuple in self._tuples:
            for temporal in gtuple.enumerate(low, high):
                point = self.join_point(temporal, gtuple.data)
                if point not in seen:
                    seen.add(point)
                    yield point

    def snapshot(self, low: int, high: int) -> set[tuple]:
        """The denoted point set restricted to the window, as a set."""
        return set(self.enumerate(low, high))

    def active_data_domain(self) -> set:
        """All data values appearing in any tuple (active-domain semantics)."""
        domain: set = set()
        for t in self._tuples:
            domain.update(t.data)
        return domain

    # ------------------------------------------------------------------
    # algebra (delegating methods; implementations in repro.core.algebra)
    # ------------------------------------------------------------------

    def union(self, other: GeneralizedRelation) -> GeneralizedRelation:
        """Set union (Section 3.1)."""
        from repro.core import algebra

        return algebra.union(self, other)

    def intersect(self, other: GeneralizedRelation) -> GeneralizedRelation:
        """Set intersection (Section 3.2)."""
        from repro.core import algebra

        return algebra.intersect(self, other)

    def subtract(self, other: GeneralizedRelation) -> GeneralizedRelation:
        """Set difference (Section 3.3)."""
        from repro.core import algebra

        return algebra.subtract(self, other)

    def project(self, names: Sequence[str]) -> GeneralizedRelation:
        """Projection onto the named attributes (Section 3.4)."""
        from repro.core import algebra

        return algebra.project(self, names)

    def select(self, condition: str | Sequence[Atom]) -> GeneralizedRelation:
        """Selection by restricted constraints (Section 3.5)."""
        from repro.core import algebra

        return algebra.select(self, condition)

    def product(self, other: GeneralizedRelation) -> GeneralizedRelation:
        """Cross product (Section 3.6)."""
        from repro.core import algebra

        return algebra.product(self, other)

    def join(self, other: GeneralizedRelation) -> GeneralizedRelation:
        """Natural join (Section 3.7)."""
        from repro.core import algebra

        return algebra.join(self, other)

    def complement(self, **kwargs) -> GeneralizedRelation:
        """Complement w.r.t. Z^k (Appendix A.6)."""
        from repro.core import algebra

        return algebra.complement(self, **kwargs)

    def rename(self, mapping: dict[str, str]) -> GeneralizedRelation:
        """Rename attributes."""
        from repro.core import algebra

        return algebra.rename(self, mapping)

    def is_empty(self) -> bool:
        """Decide emptiness (Theorem 3.5)."""
        from repro.core import emptiness

        return emptiness.relation_is_empty(self)

    def simplify(self) -> GeneralizedRelation:
        """Remove empty and subsumed tuples."""
        from repro.core import simplify

        return simplify.simplify_relation(self)

    def __str__(self) -> str:
        header = f"relation{self.schema} with {len(self)} generalized tuple(s)"
        body = "\n".join(f"  {t}" for t in self._tuples)
        return header + ("\n" + body if body else "")

    def __repr__(self) -> str:
        return f"<GeneralizedRelation {self.schema} n={len(self)}>"


def relation(
    temporal: Sequence[str] = (),
    data: Sequence[str] = (),
) -> GeneralizedRelation:
    """Shorthand for an empty relation over a fresh schema."""
    return GeneralizedRelation.empty(Schema.make(temporal, data))
