"""Relational algebra on generalized relations (Section 3 of the paper).

Every operation consumes and produces :class:`GeneralizedRelation`
values; none of them enumerates the (possibly infinite) denoted point
sets.  The data components are handled "as in a traditional relational
database" (Section 3's preamble); the temporal components follow the
paper's algorithms:

* union — merge (3.1);
* intersection — pairwise tuple intersection via lrp CRT (3.2);
* subtraction — the Figure 1 decomposition
  ``t1 - t2 = (t1 - t2*) ∪ (t̄2 ∩ t1)`` folded over the subtrahend (3.3);
* projection — per-tuple *partial* normalization, then integer-exact
  elimination in n-space (3.4, Theorems 3.1/3.2);
* selection — constraint conjunction (3.5);
* cross product and natural join (3.6, 3.7);
* complement — Appendix A.6 via :mod:`repro.core.negation`.
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Hashable, Sequence

from repro.arith import lcm
from repro.core.constraints import (
    Atom,
    VarVarAtom,
    atoms_to_dbm,
    parse_atoms,
)
from repro.core.dbm import DBM
from repro.core.errors import DomainError, ReproValueError, SchemaError
from repro.core.lrp import LRP
from repro.core.negation import (
    DEFAULT_MAX_EXTENSIONS,
    complement_tuples,
)
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import Attribute, GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.obs import trace as obs
from repro.perf import kernel, prefilter
from repro.perf.config import PERF_COUNTERS, get_config


#: Per-operation cost hints for the logical planner's cost model
#: (:mod:`repro.plan.cost`): the *selectivity / expansion factor* each
#: operation applies to its input cardinality estimate.  Unary factors
#: multiply the child estimate; pairwise factors multiply ``|A| * |B|``.
#: These are coarse structural priors — the cost model refines the
#: pairwise ones with the live prefilter counters — but they encode the
#: real asymmetries: selection only narrows constraints (never grows
#: tuple counts), projection may split tuples during partial
#: normalization, and complement is exponential in schema width
#: (Appendix A.6), so reordering must keep it late and narrow.
COST_HINTS: dict[str, float] = {
    "scan": 1.0,
    "select": 0.6,
    "select_data": 0.5,
    "select_data_equal": 0.5,
    "project": 1.25,
    "rename": 1.0,
    "shift_column": 1.0,
    "union": 1.0,
    "intersect": 0.3,
    "subtract": 1.0,
    "join": 0.3,
    "product": 1.0,
    "complement": 4.0,
}


def _traced(op_name: str, pairwise: bool = False):
    """Wrap an algebra operation in an ``algebra.<op>`` span.

    When tracing is off the wrapper costs one :func:`repro.obs.trace.span`
    call (a global load and a branch) per *operation* — never per tuple.
    When a recorder is installed the span carries the structural cost
    attributes of :mod:`repro.analysis.counters`: input/output tuple
    counts, the result's schema width and, for pairwise operations, the
    number of tuple combinations examined; the optimization layer's
    counter deltas (prefilter rejections, cache hits, fan-outs) observed
    during the span are attached automatically.
    """

    def decorate(fn):
        span_name = f"algebra.{op_name}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            sp = obs.span(span_name)
            if sp is obs.NULL_SPAN:
                return fn(*args, **kwargs)
            with sp:
                result = fn(*args, **kwargs)
                inputs = [
                    a for a in args[:2] if isinstance(a, GeneralizedRelation)
                ]
                sp.set(
                    input_tuples=sum(len(r) for r in inputs),
                    output_tuples=len(result),
                    schema_width=len(result.schema),
                )
                if pairwise and len(inputs) == 2:
                    sp.set(pairs_examined=len(inputs[0]) * len(inputs[1]))
                return result

        return wrapper

    return decorate

# ----------------------------------------------------------------------
# DBM assembly helpers
# ----------------------------------------------------------------------


def _dbm_remap(dbm: DBM, mapping: Sequence[int], new_size: int) -> DBM:
    """Copy ``dbm``'s bounds into a fresh DBM, renumbering variables.

    ``mapping[i]`` is the new index of old variable ``i``; the zero
    variable maps to itself.
    """
    out = DBM(new_size)
    for i, j, bound in dbm.iter_bounds():
        ni = mapping[i] if i >= 0 else -1
        nj = mapping[j] if j >= 0 else -1
        if ni >= 0 and nj >= 0:
            out.add_difference(ni, nj, bound)
        elif nj < 0:
            out.add_upper(ni, bound)
        else:
            out.add_lower(nj, -bound)
    return out


def _dbm_merge_into(target: DBM, source: DBM, mapping: Sequence[int]) -> None:
    """Add ``source``'s bounds to ``target`` under an index ``mapping``."""
    for i, j, bound in source.iter_bounds():
        ni = mapping[i] if i >= 0 else -1
        nj = mapping[j] if j >= 0 else -1
        if ni >= 0 and nj >= 0:
            target.add_difference(ni, nj, bound)
        elif nj < 0:
            target.add_upper(ni, bound)
        else:
            target.add_lower(nj, -bound)


def _require_same_schema(r1: GeneralizedRelation, r2: GeneralizedRelation) -> None:
    if r1.schema != r2.schema:
        raise SchemaError(
            f"schemas differ: {r1.schema} vs {r2.schema}; "
            "use rename()/project() to align them"
        )


# ----------------------------------------------------------------------
# optimization-layer plumbing (repro.perf)
# ----------------------------------------------------------------------


def _fan_out(worker, payloads: list, extra, item_cost: int = 1) -> list:
    """Run a chunk worker over ``payloads``, parallel when configured.

    ``worker(chunk, extra)`` must map a payload list to a result list of
    the same length and order; fan-out concatenates contiguous chunks in
    submission order, so the output is identical for any worker count.

    ``item_cost`` estimates one payload item's closure cost (in
    Floyd–Warshall cell updates).  Fan-out engages only when the whole
    operation clears ``parallel_min_cost`` on that estimate, so small
    workloads — where chunk pickling and pool scheduling dominate the
    work itself — stay serial no matter how many items they have.
    """
    cfg = get_config()
    if (
        cfg.workers > 1
        and len(payloads) >= cfg.parallel_threshold
        and len(payloads) * max(1, item_cost) >= cfg.parallel_min_cost
    ):
        from repro.perf import parallel

        return parallel.run_chunked(worker, payloads, extra, cfg.workers)
    return worker(payloads, extra)


class _ProbeMemo:
    """Per-chunk memo of closed DBM probes, keyed on tuple identity."""

    __slots__ = ("_probes",)

    def __init__(self) -> None:
        self._probes: dict[int, tuple[DBM, bool]] = {}

    def __call__(self, t: GeneralizedTuple) -> tuple[DBM, bool]:
        probe = self._probes.get(id(t))
        if probe is None:
            probe = prefilter.closed_probe(t.dbm)
            self._probes[id(t)] = probe
        return probe


# ----------------------------------------------------------------------
# union / intersection (Sections 3.1, 3.2)
# ----------------------------------------------------------------------


@_traced("union")
def union(r1: GeneralizedRelation, r2: GeneralizedRelation) -> GeneralizedRelation:
    """Set union: merge the tuple lists (Section 3.1).

    Canonical-key deduplication happens on insertion; deeper redundancy
    elimination is :func:`repro.core.simplify.simplify_relation`'s job,
    mirroring the paper's "we do not consider this problem" remark.
    """
    _require_same_schema(r1, r2)
    out = GeneralizedRelation(r1.schema, r1.tuples)
    for t in r2:
        out.add(t)
    return out


@_traced("intersect", pairwise=True)
def intersect(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Set intersection: pairwise tuple intersections (Section 3.2.2).

    Unsatisfiable meets (nonempty lrp intersections whose merged
    constraints have no solution) denote the empty set and are dropped.
    With prefilters enabled, provably-empty pairs are rejected before the
    CRT + DBM work; with ``workers > 1`` the pair list fans out across a
    process pool.  Both return the same tuples as the plain double loop.
    """
    _require_same_schema(r1, r2)
    out = GeneralizedRelation.empty(r1.schema)
    pairs = [(t1, t2) for t1 in r1 for t2 in r2]
    item_cost = (r1.schema.temporal_arity + 1) ** 3
    for meets in _fan_out(_intersect_chunk, pairs, None, item_cost=item_cost):
        for meet in meets:
            out.add(meet)
    return out


def _intersect_chunk(
    pairs: list[tuple[GeneralizedTuple, GeneralizedTuple]], _extra
) -> list[list[GeneralizedTuple]]:
    probe = _ProbeMemo()
    candidates = [_intersect_candidate(t1, t2, probe) for t1, t2 in pairs]
    survivors = _close_candidates(candidates)
    return [[] if meet is None else [meet] for meet in survivors]


def _intersect_candidate(
    t1: GeneralizedTuple, t2: GeneralizedTuple, probe: _ProbeMemo
) -> GeneralizedTuple | None:
    """The candidate meet of a pair, before its satisfiability check."""
    if get_config().prefilter_enabled:
        if t1.data != t2.data:
            return None
        if not prefilter.lrps_compatible(t1.lrps, t2.lrps):
            PERF_COUNTERS["prefilter_lrp_skip"] += 1
            return None
        closed1, sat1 = probe(t1)
        if not sat1:
            return None
        closed2, sat2 = probe(t2)
        if not sat2:
            return None
        if not prefilter.intervals_compatible(closed1, closed2):
            PERF_COUNTERS["prefilter_interval_skip"] += 1
            return None
    return t1.intersect(t2)


def _close_candidates(
    candidates: list[GeneralizedTuple | None],
) -> list[GeneralizedTuple | None]:
    """Collect-then-close the candidates' satisfiability probes.

    One batched closure replaces a scalar copy-and-close per candidate;
    unsatisfiable candidates are nulled out.  Each survivor's canonical
    key is prefilled from its closed probe, so the downstream
    deduplicating ``relation.add`` pays no further closure.
    """
    pending = [
        (idx, candidate.dbm.copy())
        for idx, candidate in enumerate(candidates)
        if candidate is not None
    ]
    verdicts = kernel.close_batch([probe for _, probe in pending])
    out: list[GeneralizedTuple | None] = [None] * len(candidates)
    for (idx, probe), sat in zip(pending, verdicts):
        if not sat:
            continue
        candidate = candidates[idx]
        if candidate._key is None:
            candidate._key = (
                candidate.lrps,
                tuple(tuple(row) for row in probe._b),
                candidate.data,
            )
        out[idx] = candidate
    return out


# ----------------------------------------------------------------------
# subtraction (Section 3.3, Figure 1)
# ----------------------------------------------------------------------


def lrp_subtract_pieces(
    minuend: LRP, meet: LRP
) -> list[tuple[LRP, int | None, int | None]]:
    """Subtract ``meet`` (a sub-lrp of ``minuend``) from ``minuend``.

    Returns pieces ``(lrp, upper, lower)`` whose union is the difference;
    ``upper``/``lower`` are optional extra unary bounds (``X <= upper``,
    ``X >= lower``) needed when a single point is carved out of an
    infinite progression — a case the paper's Sub never meets because it
    subtracts equal-period lrps, but which arises naturally when one
    operand is a singleton.
    """
    if meet == minuend:
        return []
    if minuend.period == 0:
        # meet ⊆ {c} and meet != minuend means meet is empty: impossible
        # here because callers pass a nonempty intersection.
        raise ReproValueError("nonempty sub-lrp of a singleton must equal it")
    if meet.period == 0:
        point = meet.offset
        return [
            (minuend, point - 1, None),
            (minuend, None, point + 1),
        ]
    pieces = minuend.split(meet.period)
    return [(piece, None, None) for piece in pieces if piece != meet]


def subtract_tuples(
    t1: GeneralizedTuple, t2: GeneralizedTuple
) -> list[GeneralizedTuple]:
    """Subtract one generalized tuple from another (Section 3.3.3).

    Implements ``t1 - t2 = (t1 - t2*) ∪ (t̄2 ∩ t1)`` (Figure 1):

    * ``t1 - t2*`` — free-extension subtraction with ``t1``'s constraints
      kept, using a disjoint "staircase" decomposition (component ``i``
      outside the intersection, components before ``i`` inside it);
    * ``t̄2 ∩ t1`` — for each atomic constraint of ``t2``, a tuple over
      the intersected free extension carrying ``t1``'s constraints plus
      the negated atom.
    """
    if t1.temporal_arity != t2.temporal_arity:
        raise SchemaError("temporal arities differ")
    closed1, sat1 = prefilter.closed_probe(t1.dbm)
    if not sat1:
        return []  # t1 is empty; so is the difference
    if not t2.dbm.copy().close():
        return [t1]  # subtracting the empty set
    if t1.data != t2.data:
        return [t1]
    if get_config().prefilter_enabled:
        if not prefilter.lrps_compatible(t1.lrps, t2.lrps):
            # Some component meets are empty: same [t1] the loop below
            # would return, minus the CRT work.
            PERF_COUNTERS["prefilter_lrp_skip"] += 1
            return [t1]
        closed2, _ = prefilter.closed_probe(t2.dbm)
        if not prefilter.intervals_compatible(closed1, closed2):
            # t1 ∩ t2 is empty, so the difference *is* t1 — skipping the
            # staircase decomposition returns it in one piece instead of
            # as the equivalent carved-up union.
            PERF_COUNTERS["prefilter_subtract_skip"] += 1
            return [t1]
    arity = t1.temporal_arity
    meets: list[LRP] = []
    for a, b in zip(t1.lrps, t2.lrps):
        meet = a.intersect(b)
        if meet is None:
            return [t1]
        meets.append(meet)
    out: list[GeneralizedTuple] = []
    # Every piece below is t1's system plus at most two bounds; the
    # delta records them so the fast filter can decide satisfiability
    # against t1's closure instead of re-closing each piece.
    deltas: list[tuple] = []
    # Part 1: t1 restricted to free extensions missing the intersection.
    for i in range(arity):
        for piece, upper, lower in lrp_subtract_pieces(t1.lrps[i], meets[i]):
            lrps = list(t1.lrps)
            for prefix in range(i):
                lrps[prefix] = meets[prefix]
            lrps[i] = piece
            dbm = t1.dbm.copy()
            if upper is not None:
                dbm.add_upper(i, upper)
            if lower is not None:
                dbm.add_lower(i, lower)
            out.append(GeneralizedTuple(tuple(lrps), dbm, t1.data))
            deltas.append(("unary", i, upper, lower))
    # Part 2: points on the shared free extension violating t2's constraints.
    for i, j, bound in t2.dbm.iter_bounds():
        dbm = t1.dbm.copy()
        if i >= 0 and j >= 0:
            dbm.add_difference(j, i, -bound - 1)
            deltas.append(("edge", j, i, -bound - 1))
        elif j < 0:
            dbm.add_lower(i, bound + 1)
            deltas.append(("edge", -1, i, -bound - 1))
        else:
            dbm.add_upper(j, -bound - 1)
            deltas.append(("edge", j, -1, -bound - 1))
        out.append(GeneralizedTuple(tuple(meets), dbm, t1.data))
    if get_config().incremental_enabled:
        # Closure-delta fast path: one or two edges added to t1's closed
        # satisfiable system.  A new negative cycle must traverse a new
        # edge, and the cheapest return path is a closure entry, so each
        # piece's satisfiability is an O(1) lookup (see
        # :func:`repro.perf.prefilter.added_bound_satisfiable`).
        PERF_COUNTERS["closure_delta"] += len(out)
        return [
            t
            for t, delta in zip(out, deltas)
            if _delta_satisfiable(closed1, delta)
        ]
    return [t for t in out if t.dbm.copy().close()]


def _delta_satisfiable(closed1: DBM, delta: tuple) -> bool:
    """Whether t1's closed system stays satisfiable under a piece's delta.

    ``("edge", u, v, w)`` is one added bound ``X_u - X_v <= w``;
    ``("unary", i, upper, lower)`` is up to two bounds on one attribute.
    For the latter, a negative cycle can use the upper edge, the lower
    edge, or both back to back (``upper < lower``); each case is an O(1)
    closure lookup, together exhaustive over simple cycles.
    """
    kind = delta[0]
    if kind == "edge":
        _, u, v, w = delta
        return prefilter.added_bound_satisfiable(closed1, u, v, w)
    _, i, upper, lower = delta
    if upper is not None and lower is not None and upper < lower:
        return False
    if upper is not None and not prefilter.added_bound_satisfiable(
        closed1, i, -1, upper
    ):
        return False
    if lower is not None and not prefilter.added_bound_satisfiable(
        closed1, -1, i, -lower
    ):
        return False
    return True


@_traced("subtract", pairwise=True)
def subtract(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Set difference, folding tuple subtraction over ``r2`` (Section 3.3.2).

    Each minuend tuple's fold is independent of the others, so with
    ``workers > 1`` the minuends fan out across a process pool.
    """
    _require_same_schema(r1, r2)
    out = GeneralizedRelation.empty(r1.schema)
    minuends = list(r1)
    subtrahends = list(r2)
    # One minuend folds over every subtrahend, producing ~4 pieces to
    # close per subtraction step (Figure 1's staircase + negated atoms).
    item_cost = (
        4
        * max(1, len(subtrahends))
        * (r1.schema.temporal_arity + 1) ** 3
    )
    for survivors in _fan_out(
        _subtract_chunk, minuends, subtrahends, item_cost=item_cost
    ):
        for t in survivors:
            out.add(t)
    return out


def _subtract_chunk(
    minuends: list[GeneralizedTuple], subtrahends: list[GeneralizedTuple]
) -> list[list[GeneralizedTuple]]:
    return [_subtract_fold(t1, subtrahends) for t1 in minuends]


def _subtract_fold(
    t1: GeneralizedTuple, subtrahends: list[GeneralizedTuple]
) -> list[GeneralizedTuple]:
    current = [t1]
    for t2 in subtrahends:
        next_round: list[GeneralizedTuple] = []
        for t in current:
            next_round.extend(subtract_tuples(t, t2))
        current = _dedup(next_round)
        if not current:
            break
    return current


def _dedup(tuples: list[GeneralizedTuple]) -> list[GeneralizedTuple]:
    """Deduplicate by semantic key, dropping provably-empty tuples.

    The semantic key (see :meth:`GeneralizedTuple.semantic_key`) folds
    constraint-forced values into the lrps and singleton lrps into the
    closure, so equivalent tuples produced by different operation orders
    — a pinned-DBM variant here, a singleton-lrp variant there — collapse
    to one representative instead of accumulating across the fold.
    """
    seen: set[tuple] = set()
    out: list[GeneralizedTuple] = []
    for t in tuples:
        key = t.semantic_key()
        if key[0] == "EMPTY":
            continue
        if key not in seen:
            seen.add(key)
            out.append(t)
    return out


# ----------------------------------------------------------------------
# projection (Section 3.4)
# ----------------------------------------------------------------------


@_traced("project")
def project(
    relation: GeneralizedRelation,
    names: Sequence[str],
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> GeneralizedRelation:
    """Project onto the named attributes, in the given order.

    Temporal eliminations go through the paper's normalization
    (Theorem 3.2) restricted to the constraint-connected cluster of the
    dropped attributes — the "partial normalization" optimization of
    Section 3.4 — and are integer-exact by Theorem 3.1.  Re-orderings and
    data-only changes never normalize.
    """
    schema = relation.schema
    for name in names:
        if not schema.has(name):
            raise SchemaError(f"cannot project onto unknown attribute {name!r}")
    if len(set(names)) != len(names):
        raise SchemaError("projection attribute list has duplicates")
    new_attrs = tuple(schema.attribute(name) for name in names)
    new_schema = Schema(new_attrs)
    keep_t = [
        schema.temporal_index(a.name) for a in new_attrs if a.temporal
    ]
    keep_d = [
        schema.data_index(a.name) for a in new_attrs if not a.temporal
    ]
    dropped_t = [
        i
        for i in range(schema.temporal_arity)
        if i not in set(keep_t)
    ]
    out = GeneralizedRelation.empty(new_schema)
    tuples = list(relation)
    use_kernel = kernel.kernel_active()
    if not dropped_t:
        probes = [gtuple.dbm.copy() for gtuple in tuples]
        if use_kernel:
            # Collect-then-close: one batched sweep over every tuple's
            # probe instead of a scalar closure inside each project().
            kernel.close_batch(probes)
        for gtuple, probe in zip(tuples, probes):
            data = tuple(gtuple.data[i] for i in keep_d)
            projected_dbm = probe.project(keep_t)
            # Unsatisfiable tuples denote the empty set; dropping them is
            # semantics-preserving and keeps stored DBMs marker-free.
            if not projected_dbm.is_satisfiable():
                continue
            out.add(
                GeneralizedTuple(
                    lrps=tuple(gtuple.lrps[i] for i in keep_t),
                    dbm=projected_dbm,
                    data=data,
                )
            )
        return out
    if use_kernel:
        finals = list(
            _project_batched(tuples, keep_t, dropped_t, keep_d, max_tuples)
        )
        _prefill_keys(finals)
        for final in finals:
            out.add(final)
        return out
    for gtuple in tuples:
        data = tuple(gtuple.data[i] for i in keep_d)
        for projected in project_tuple_temporal(
            gtuple, keep_t, dropped_t, max_tuples=max_tuples
        ):
            out.add(
                GeneralizedTuple(
                    lrps=projected.lrps, dbm=projected.dbm, data=data
                )
            )
    return out


def _prefill_keys(finals: list[GeneralizedTuple]) -> None:
    """Batch the canonical-key closures of freshly built tuples.

    ``relations.add`` dedups on :meth:`GeneralizedTuple.canonical_key`,
    which closes a probe copy per tuple; prefilling the cached ``_key``
    with one batched sweep turns that into a set lookup.  The key format
    mirrors :meth:`DBM.canonical_key` exactly (closed bound rows for
    satisfiable systems, the ``("UNSAT", size)`` marker otherwise).
    """
    pending = [t for t in finals if t._key is None]
    if not pending:
        return
    dbm_keys = kernel.canonical_keys_batch([t.dbm for t in pending])
    for t, dbm_key in zip(pending, dbm_keys):
        t._key = (t.lrps, dbm_key, t.data)


class _ProjectPlan:
    """Per-tuple combinatorics for temporal elimination.

    Shared by the scalar and batched projection paths so both enumerate
    exactly the same combos with the same bookkeeping.
    """

    __slots__ = (
        "cluster",
        "cluster_order",
        "cluster_pos",
        "k",
        "choices",
        "split_sizes",
        "outside_ops",
        "kept_cluster",
        "kept_cluster_attrs",
        "kept_rows",
        "template_entries",
        "new_index",
        "out_rows",
        "mat_template",
    )


def _project_plan(
    gtuple: GeneralizedTuple,
    keep: Sequence[int],
    dropped: Sequence[int],
    max_tuples: int,
) -> _ProjectPlan:
    """Compute one tuple's cluster, period, splits and bound partition.

    Plans depend only on the tuple (immutable after construction) and
    the projection arguments, so they are memoized on the tuple itself
    — like the canonical/semantic key memos — and repeated projections
    over a stored relation skip the replan.  The memo is consulted only
    while caching is enabled, keeping the naive baseline honest.
    """
    use_memo = get_config().cache_enabled
    memo_key = None
    if use_memo:
        memo_key = (tuple(keep), tuple(dropped), max_tuples)
        memo = gtuple._plans
        if memo is not None:
            plan = memo.get(memo_key)
            if plan is not None:
                # The blow-up still happens downstream on every run.
                PERF_COUNTERS["normalize_expansion"] += plan.split_sizes
                PERF_COUNTERS["plan_memo_hits"] += 1
                return plan
    plan = _ProjectPlan()
    cluster = _constraint_cluster(gtuple, dropped)
    cluster_order = sorted(cluster)
    cluster_pos = {attr: idx for idx, attr in enumerate(cluster_order)}
    plan.cluster = cluster
    plan.cluster_order = cluster_order
    plan.cluster_pos = cluster_pos
    # Period of the cluster only.
    lrps = gtuple.lrps
    k = 1
    for i in cluster_order:
        period = lrps[i].period
        if period:
            k = lcm(k, period)
    plan.k = k
    # Split cluster lrps; explosion bounded by max_tuples.  An lrp whose
    # period already equals k splits into itself, so it skips the split
    # (and its factor of 1 in the blow-up product).
    split_sizes = 1
    choices = []
    for i in cluster_order:
        lrp = lrps[i]
        period = lrp.period
        if period == 0 or (period == k and 0 <= lrp.offset < k):
            choices.append([lrp])
        else:
            split_sizes *= k // period
            choices.append(lrp.split(k))
    if split_sizes > max_tuples:
        from repro.core.errors import NormalizationLimitError

        raise NormalizationLimitError(
            f"projection would normalize into {split_sizes} tuples "
            f"(limit {max_tuples})"
        )
    # Partial normalization's blow-up parameter (Section 3.4/3.8).
    PERF_COUNTERS["normalize_expansion"] += split_sizes
    plan.choices = choices
    plan.split_sizes = split_sizes
    # Partition the bound matrix directly (same row-major order as
    # iter_bounds): cluster bounds are transcribed to template row
    # indices (0 is the zero variable, cluster positions are 1-based),
    # outside bounds straight to output DBM *matrix cells* — every
    # non-cluster attribute survives projection (dropped ones are
    # cluster seeds by definition), and ``X_i - X_j <= b``, ``X_i <= b``
    # and ``X_i >= -b`` all store ``b`` at one ``_set`` cell.
    new_index = {attr: idx for idx, attr in enumerate(keep)}
    template_entries = []
    outside_ops = []
    b = gtuple.dbm._b
    n = gtuple.dbm._n
    for row_i in range(n):
        row = b[row_i]
        ai = row_i - 1
        in_i = ai in cluster
        for row_j in range(n):
            bound = row[row_j]
            if bound is None or row_i == row_j:
                continue
            aj = row_j - 1
            if in_i or aj in cluster:
                template_entries.append(
                    (
                        cluster_pos[ai] + 1 if ai >= 0 else 0,
                        cluster_pos[aj] + 1 if aj >= 0 else 0,
                        bound,
                    )
                )
            else:
                outside_ops.append(
                    (
                        new_index[ai] + 1 if ai >= 0 else 0,
                        new_index[aj] + 1 if aj >= 0 else 0,
                        bound,
                    )
                )
    plan.template_entries = template_entries
    plan.outside_ops = outside_ops
    plan.new_index = new_index
    dropped_set = set(dropped)
    kept_cluster = []
    kept_cluster_attrs = []
    for pos, i in enumerate(cluster_order):
        if i not in dropped_set:
            kept_cluster.append(pos)
            kept_cluster_attrs.append(i)
    plan.kept_cluster = kept_cluster
    plan.kept_cluster_attrs = kept_cluster_attrs
    plan.kept_rows = tuple([0] + [pos + 1 for pos in kept_cluster])
    plan.out_rows = [0] + [new_index[attr] + 1 for attr in kept_cluster_attrs]
    n_out = len(keep) + 1
    plan.mat_template = [
        [0 if i == j else None for j in range(n_out)] for i in range(n_out)
    ]
    if use_memo:
        if gtuple._plans is None:
            gtuple._plans = {}
        gtuple._plans[memo_key] = plan
    return plan


def _project_combo(
    gtuple: GeneralizedTuple,
    plan: _ProjectPlan,
    combo: tuple[LRP, ...],
    keep: Sequence[int],
) -> GeneralizedTuple | None:
    """Scalar elimination of one split combo (``None`` when empty)."""
    cluster_order = plan.cluster_order
    cluster_pos = plan.cluster_pos
    k = plan.k
    offsets = {
        attr: lrp.offset for attr, lrp in zip(cluster_order, combo)
    }
    singles = {
        attr: lrp.period == 0 for attr, lrp in zip(cluster_order, combo)
    }
    n_dbm = DBM(len(cluster_order))
    for pos, lrp in enumerate(combo):
        if lrp.period == 0:
            n_dbm.add_value(pos, 0)
    # template_entries is the cluster-bound list in template row space
    # (row 0 = zero variable, cluster position + 1 otherwise), shared
    # with the batched kernel path.
    offs = [0] + [lrp.offset for lrp in combo]
    for ti, tj, bound in plan.template_entries:
        n_bound = (bound - offs[ti] + offs[tj]) // k
        ni = ti - 1
        nj = tj - 1
        if ni >= 0 and nj >= 0:
            n_dbm.add_difference(ni, nj, n_bound)
        elif nj < 0:
            n_dbm.add_upper(ni, n_bound)
        else:
            n_dbm.add_lower(nj, -n_bound)
    if not n_dbm.close():
        return None
    projected_n = n_dbm.project(plan.kept_cluster)
    if not projected_n.close():
        return None
    kept_cluster_attrs = plan.kept_cluster_attrs
    # Assemble the output tuple in `keep` order.
    lrps: list[LRP] = []
    for attr in keep:
        if attr in plan.cluster:
            lrps.append(combo[cluster_pos[attr]])
        else:
            lrps.append(gtuple.lrps[attr])
    new_index = plan.new_index
    out_dbm = DBM(len(keep))
    # Cluster constraints, mapped back to X-space.
    for i, j, bound in projected_n.iter_bounds():
        ai = kept_cluster_attrs[i] if i >= 0 else -1
        aj = kept_cluster_attrs[j] if j >= 0 else -1
        if ai >= 0 and singles[ai] and aj < 0:
            continue
        if aj >= 0 and singles[aj] and ai < 0:
            continue
        ci = offsets[ai] if ai >= 0 else 0
        cj = offsets[aj] if aj >= 0 else 0
        x_bound = k * bound + ci - cj
        ni = new_index[ai] if ai >= 0 else -1
        nj = new_index[aj] if aj >= 0 else -1
        if ni >= 0 and nj >= 0:
            out_dbm.add_difference(ni, nj, x_bound)
        elif nj < 0:
            out_dbm.add_upper(ni, x_bound)
        else:
            out_dbm.add_lower(nj, -x_bound)
    # Projecting a closed n-space system yields a closed system, and the
    # affine X-space transcription preserves the triangle inequality
    # entry for entry, so when no entry was skipped (no kept singleton
    # pins) the output is born closed — downstream canonicalization pays
    # no re-closure (any outside bounds added below re-open it with a
    # tracked edit list, keeping the incremental path eligible).
    if not any(singles[attr] for attr in kept_cluster_attrs):
        out_dbm._closed = True
        out_dbm._dirty = []
    # Outside constraints survive verbatim (they touch no cluster attr);
    # outside_ops already carries them as output-matrix cells.
    for ri, rj, bound in plan.outside_ops:
        out_dbm._set(ri, rj, bound)
    return GeneralizedTuple(tuple(lrps), out_dbm, gtuple.data)


def project_tuple_temporal(
    gtuple: GeneralizedTuple,
    keep: Sequence[int],
    dropped: Sequence[int],
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> list[GeneralizedTuple]:
    """Eliminate the ``dropped`` temporal attributes from one tuple.

    Only the constraint-connected cluster of the dropped attributes is
    normalized; attributes outside the cluster keep their lrps and
    mutual constraints untouched.
    """
    if not gtuple.dbm.copy().close():
        return []  # empty tuple: empty projection
    plan = _project_plan(gtuple, keep, dropped, max_tuples)
    results: list[GeneralizedTuple] = []
    for combo in itertools.product(*plan.choices):
        projected = _project_combo(gtuple, plan, combo, keep)
        if projected is not None:
            results.append(projected)
    return results


def _project_batched(
    tuples: list[GeneralizedTuple],
    keep: Sequence[int],
    dropped: Sequence[int],
    keep_d: Sequence[int],
    max_tuples: int,
):
    """Batched temporal elimination across a whole relation.

    Yields finished output tuples (data already projected via
    ``keep_d``) in exactly the scalar path's order: plans and combos are
    enumerated identically; only the per-combo n-space closure,
    projection and X-space transcription run as grouped vectorized
    sweeps in :func:`repro.perf.kernel.project_batch`.  Combos with
    singleton splits take the scalar combo path (their n-space pins are
    not template-expressible), as do whole groups the kernel rejects
    for exactness.
    """
    sats = kernel.sat_batch([gtuple.dbm for gtuple in tuples])
    plans: list[_ProjectPlan | None] = []
    jobs: list[tuple] = []
    combo_refs: list[list[tuple] | None] = []
    for gtuple, sat in zip(tuples, sats):
        if not sat:
            plans.append(None)
            combo_refs.append(None)
            continue
        plan = _project_plan(gtuple, keep, dropped, max_tuples)
        plans.append(plan)
        template = None
        template_usable = True
        refs: list[tuple] = []
        for combo in itertools.product(*plan.choices):
            if any(lrp.period == 0 for lrp in combo):
                refs.append((combo, None))
                continue
            if template is None and template_usable:
                template = kernel.bounds_template(
                    plan.template_entries, len(plan.cluster_order) + 1
                )
                template_usable = template is not None
            if template is None:
                refs.append((combo, None))
                continue
            offsets = (0,) + tuple(lrp.offset for lrp in combo)
            jobs.append(
                (template[0], template[1], offsets, plan.k, plan.kept_rows)
            )
            refs.append((combo, len(jobs) - 1))
        combo_refs.append(refs)
    job_results = kernel.project_batch(jobs) if jobs else []
    for gtuple, plan, refs in zip(tuples, plans, combo_refs):
        if plan is None:
            continue
        data = tuple(gtuple.data[i] for i in keep_d)
        for combo, job_idx in refs:
            if job_idx is None or job_results[job_idx] is kernel.SCALAR:
                projected = _project_combo(gtuple, plan, combo, keep)
                if projected is not None:
                    yield GeneralizedTuple(
                        lrps=projected.lrps, dbm=projected.dbm, data=data
                    )
                continue
            result = job_results[job_idx]
            if result is not None:
                yield _assemble_projected(
                    gtuple, plan, combo, keep, result, data
                )


def _assemble_projected(
    gtuple: GeneralizedTuple,
    plan: _ProjectPlan,
    combo: tuple[LRP, ...],
    keep: Sequence[int],
    x_bounds: list[list[int | None]],
    data: tuple,
) -> GeneralizedTuple:
    """Build one output tuple from a kernel-transcribed X-space matrix.

    ``x_bounds`` is the closed bound matrix over ``plan.kept_rows``; it
    is installed directly as a closed DBM (the transcription preserves
    closure), then any outside bounds re-open it with tracked edits.
    """
    cluster_pos = plan.cluster_pos
    cluster = plan.cluster
    lrps = tuple(
        combo[cluster_pos[attr]] if attr in cluster else gtuple.lrps[attr]
        for attr in keep
    )
    mat: list[list[int | None]] = [row[:] for row in plan.mat_template]
    out_rows = plan.out_rows
    for a, ra in enumerate(out_rows):
        x_row = x_bounds[a]
        row = mat[ra]
        for b, rb in enumerate(out_rows):
            if a != b and x_row[b] is not None:
                row[rb] = x_row[b]
    out_dbm = DBM.__new__(DBM)
    out_dbm._n = len(mat)
    out_dbm._b = mat
    out_dbm._closed = True
    out_dbm._dirty = []
    for ri, rj, bound in plan.outside_ops:
        out_dbm._set(ri, rj, bound)
    # Bypass the dataclass __init__: lrps/data are already tuples and
    # the arity invariant holds by construction.
    out = GeneralizedTuple.__new__(GeneralizedTuple)
    out.lrps = lrps
    out.dbm = out_dbm
    out.data = data
    out._key = None
    out._skey = None
    out._plans = None
    return out


def _constraint_cluster(
    gtuple: GeneralizedTuple, seeds: Sequence[int]
) -> set[int]:
    """Attributes transitively constraint-connected to the ``seeds``."""
    b = gtuple.dbm._b
    arity = gtuple.temporal_arity
    cluster = set(seeds)
    frontier = list(seeds)
    while frontier:
        node = frontier.pop()
        row = b[node + 1]
        for other in range(arity):
            if other not in cluster and (
                row[other + 1] is not None
                or b[other + 1][node + 1] is not None
            ):
                cluster.add(other)
                frontier.append(other)
    return cluster


# ----------------------------------------------------------------------
# selection (Section 3.5)
# ----------------------------------------------------------------------


@_traced("select")
def select(
    relation: GeneralizedRelation, condition: str | Sequence[Atom]
) -> GeneralizedRelation:
    """Add restricted constraints to every tuple (Section 3.5).

    The condition refers to the schema's temporal attribute names; data
    selections go through :func:`select_data`.
    """
    atoms = (
        parse_atoms(condition) if isinstance(condition, str) else list(condition)
    )
    for atom in atoms:
        _check_temporal_atom(relation.schema, atom)
    extra = atoms_to_dbm(atoms, relation.schema.temporal_names)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        merged = gtuple.dbm.intersect(extra)
        # Satisfiability is checked on a copy so the stored constraint
        # set stays as written (negation cost tracks the written atoms).
        if merged.copy().close():
            out.add(GeneralizedTuple(gtuple.lrps, merged, gtuple.data))
    return out


def _check_temporal_atom(schema: Schema, atom: Atom) -> None:
    names = set(schema.temporal_names)
    if atom.left not in names:
        raise SchemaError(
            f"selection atom {atom} references non-temporal or unknown "
            f"attribute {atom.left!r}"
        )
    if isinstance(atom, VarVarAtom) and atom.right not in names:
        raise SchemaError(
            f"selection atom {atom} references non-temporal or unknown "
            f"attribute {atom.right!r}"
        )


@_traced("select_data")
def select_data(
    relation: GeneralizedRelation, name: str, value: Hashable
) -> GeneralizedRelation:
    """Keep tuples whose data attribute ``name`` equals ``value``."""
    idx = relation.schema.data_index(name)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        if gtuple.data[idx] == value:
            out.add(gtuple)
    return out


@_traced("select_data_equal")
def select_data_equal(
    relation: GeneralizedRelation, name1: str, name2: str
) -> GeneralizedRelation:
    """Keep tuples whose data attributes ``name1`` and ``name2`` coincide."""
    i1 = relation.schema.data_index(name1)
    i2 = relation.schema.data_index(name2)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        if gtuple.data[i1] == gtuple.data[i2]:
            out.add(gtuple)
    return out


# ----------------------------------------------------------------------
# cross product and join (Sections 3.6, 3.7)
# ----------------------------------------------------------------------


@_traced("product", pairwise=True)
def product(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Cross product: all tuple combinations, constraints side by side."""
    overlap = set(r1.schema.names) & set(r2.schema.names)
    if overlap:
        raise SchemaError(
            f"cross product requires disjoint attribute names; shared: "
            f"{sorted(overlap)} (rename first)"
        )
    new_schema = Schema(r1.schema.attributes + r2.schema.attributes)
    a1 = r1.schema.temporal_arity
    a2 = r2.schema.temporal_arity
    out = GeneralizedRelation.empty(new_schema)
    probe = _ProbeMemo()
    hoist = get_config().prefilter_enabled
    for t1 in r1:
        sat1 = probe(t1)[1] if hoist else t1.dbm.copy().close()
        if not sat1:
            continue  # empty tuple: nothing to combine
        for t2 in r2:
            sat2 = probe(t2)[1] if hoist else t2.dbm.copy().close()
            if not sat2:
                continue
            dbm = DBM(a1 + a2)
            _dbm_merge_into(dbm, t1.dbm, list(range(a1)))
            _dbm_merge_into(dbm, t2.dbm, [a1 + i for i in range(a2)])
            out.add(
                GeneralizedTuple(
                    lrps=t1.lrps + t2.lrps,
                    dbm=dbm,
                    data=t1.data + t2.data,
                )
            )
    return out


@_traced("join", pairwise=True)
def join(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Natural join on all shared attribute names (Section 3.7).

    Shared temporal attributes are intersected (lrp CRT + constraint
    union); shared data attributes must hold equal values.  The result
    schema is ``r1``'s attributes followed by ``r2``'s non-shared ones.
    """
    shared = [a for a in r1.schema.attributes if r2.schema.has(a.name)]
    for attr in shared:
        other = r2.schema.attribute(attr.name)
        if other.temporal != attr.temporal:
            raise SchemaError(
                f"attribute {attr.name!r} is temporal on one side and "
                "data on the other"
            )
    r2_only = [a for a in r2.schema.attributes if not r1.schema.has(a.name)]
    new_schema = Schema(r1.schema.attributes + tuple(r2_only))
    a1 = r1.schema.temporal_arity
    result_t_names = new_schema.temporal_names
    # Map each side's temporal attribute positions into result positions.
    map1 = [result_t_names.index(n) for n in r1.schema.temporal_names]
    map2 = [result_t_names.index(n) for n in r2.schema.temporal_names]
    shared_t = [
        (r1.schema.temporal_index(a.name), r2.schema.temporal_index(a.name))
        for a in shared
        if a.temporal
    ]
    shared_d = [
        (r1.schema.data_index(a.name), r2.schema.data_index(a.name))
        for a in shared
        if not a.temporal
    ]
    d2_only_idx = [
        r2.schema.data_index(a.name) for a in r2_only if not a.temporal
    ]
    t2_only = [
        (r2.schema.temporal_index(a.name), result_t_names.index(a.name))
        for a in r2_only
        if a.temporal
    ]
    context = (
        a1,
        map1,
        map2,
        shared_t,
        shared_d,
        t2_only,
        d2_only_idx,
        len(result_t_names),
    )
    out = GeneralizedRelation.empty(new_schema)
    pairs = [(t1, t2) for t1 in r1 for t2 in r2]
    item_cost = (len(result_t_names) + 1) ** 3
    for joined in _fan_out(_join_chunk, pairs, context, item_cost=item_cost):
        if joined is not None:
            out.add(joined)
    return out


def _join_chunk(
    pairs: list[tuple[GeneralizedTuple, GeneralizedTuple]], context: tuple
) -> list[GeneralizedTuple | None]:
    probe = _ProbeMemo()
    candidates = [_join_candidate(t1, t2, context, probe) for t1, t2 in pairs]
    return _close_candidates(candidates)


def _join_candidate(
    t1: GeneralizedTuple,
    t2: GeneralizedTuple,
    context: tuple,
    probe: _ProbeMemo,
) -> GeneralizedTuple | None:
    """The candidate joined tuple, before its satisfiability check."""
    (a1, map1, map2, shared_t, shared_d, t2_only, d2_only_idx, arity) = context
    pre = get_config().prefilter_enabled
    if any(t1.data[i] != t2.data[j] for i, j in shared_d):
        return None
    if pre and shared_t:
        if not prefilter.lrps_compatible(t1.lrps, t2.lrps, shared_t):
            PERF_COUNTERS["prefilter_lrp_skip"] += 1
            return None
    if pre:
        closed1, sat1 = probe(t1)
        if not sat1:
            return None
        closed2, sat2 = probe(t2)
        if not sat2:
            return None
        if shared_t and not prefilter.intervals_compatible(
            closed1, closed2, shared_t
        ):
            PERF_COUNTERS["prefilter_interval_skip"] += 1
            return None
    else:
        if not t1.dbm.copy().close() or not t2.dbm.copy().close():
            return None
    lrps: list[LRP | None] = [None] * arity
    for i1, pos in zip(range(a1), map1):
        lrps[pos] = t1.lrps[i1]
    for i1, i2 in shared_t:
        meet = t1.lrps[i1].intersect(t2.lrps[i2])
        if meet is None:
            return None
        lrps[map1[i1]] = meet
    for i2, pos in t2_only:
        lrps[pos] = t2.lrps[i2]
    dbm = DBM(arity)
    _dbm_merge_into(dbm, t1.dbm, map1)
    _dbm_merge_into(dbm, t2.dbm, map2)
    data = t1.data + tuple(t2.data[i] for i in d2_only_idx)
    return GeneralizedTuple(tuple(lrps), dbm, data)


# ----------------------------------------------------------------------
# complement (Appendix A.6)
# ----------------------------------------------------------------------


@_traced("complement")
def complement(
    relation: GeneralizedRelation,
    data_domains: dict[str, Sequence[Hashable]] | None = None,
    max_tuples: int = DEFAULT_MAX_TUPLES,
    max_extensions: int = DEFAULT_MAX_EXTENSIONS,
) -> GeneralizedRelation:
    """Complement w.r.t. ``Z^k`` on the temporal sort.

    Purely temporal relations need no extra input.  Relations with data
    attributes need ``data_domains``: a finite universe per data
    attribute (the temporal sort is still complemented symbolically over
    all of Z).
    """
    schema = relation.schema
    arity = schema.temporal_arity
    if schema.data_arity == 0:
        tuples = complement_tuples(
            list(relation),
            arity=arity,
            max_tuples=max_tuples,
            max_extensions=max_extensions,
        )
        return GeneralizedRelation(schema, tuples)
    if data_domains is None:
        raise DomainError(
            "complement of a relation with data attributes requires "
            "data_domains (a finite universe per data attribute)"
        )
    for name in schema.data_names:
        if name not in data_domains:
            raise DomainError(f"data_domains is missing attribute {name!r}")
    import itertools

    by_data: dict[tuple, list[GeneralizedTuple]] = {}
    for gtuple in relation:
        by_data.setdefault(gtuple.data, []).append(gtuple)
    out = GeneralizedRelation.empty(schema)
    domains = [list(data_domains[name]) for name in schema.data_names]
    for data in itertools.product(*domains):
        group = by_data.get(tuple(data), [])
        for t in complement_tuples(
            group,
            arity=arity,
            data=tuple(data),
            max_tuples=max_tuples,
            max_extensions=max_extensions,
        ):
            out.add(t)
    return out


# ----------------------------------------------------------------------
# renaming and shifting (support operations for the query engine)
# ----------------------------------------------------------------------


@_traced("rename")
def rename(
    relation: GeneralizedRelation, mapping: dict[str, str]
) -> GeneralizedRelation:
    """Rename attributes; tuple contents are untouched."""
    for old in mapping:
        if not relation.schema.has(old):
            raise SchemaError(f"cannot rename unknown attribute {old!r}")
    new_attrs = tuple(
        Attribute(mapping.get(a.name, a.name), a.temporal)
        for a in relation.schema.attributes
    )
    return GeneralizedRelation(Schema(new_attrs), relation.tuples)


@_traced("shift_column")
def shift_column(
    relation: GeneralizedRelation, name: str, delta: int
) -> GeneralizedRelation:
    """Shift a temporal column: each point's ``name`` value moves by ``delta``.

    Used to evaluate successor terms: the atom ``P(t + c, ...)`` holds
    exactly when ``(t + c, ...) ∈ P``, i.e. ``t`` ranges over ``P``'s
    first column shifted by ``-c``.
    """
    if delta == 0:
        return relation
    idx = relation.schema.temporal_index(name)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        lrp = gtuple.lrps[idx]
        shifted = LRP.make(lrp.offset + delta, lrp.period)
        lrps = list(gtuple.lrps)
        lrps[idx] = shifted
        out.add(
            GeneralizedTuple(
                tuple(lrps),
                gtuple.dbm.shift_variable(idx, delta),
                gtuple.data,
            )
        )
    return out


def equivalent(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> bool:
    """Semantic equality: both differences are empty."""
    return subtract(r1, r2).is_empty() and subtract(r2, r1).is_empty()
