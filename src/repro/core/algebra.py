"""Relational algebra on generalized relations (Section 3 of the paper).

Every operation consumes and produces :class:`GeneralizedRelation`
values; none of them enumerates the (possibly infinite) denoted point
sets.  The data components are handled "as in a traditional relational
database" (Section 3's preamble); the temporal components follow the
paper's algorithms:

* union — merge (3.1);
* intersection — pairwise tuple intersection via lrp CRT (3.2);
* subtraction — the Figure 1 decomposition
  ``t1 - t2 = (t1 - t2*) ∪ (t̄2 ∩ t1)`` folded over the subtrahend (3.3);
* projection — per-tuple *partial* normalization, then integer-exact
  elimination in n-space (3.4, Theorems 3.1/3.2);
* selection — constraint conjunction (3.5);
* cross product and natural join (3.6, 3.7);
* complement — Appendix A.6 via :mod:`repro.core.negation`.
"""

from __future__ import annotations

import functools
from collections.abc import Hashable, Sequence

from repro.arith import lcm
from repro.core.constraints import (
    Atom,
    VarVarAtom,
    atoms_to_dbm,
    parse_atoms,
)
from repro.core.dbm import DBM
from repro.core.errors import DomainError, ReproValueError, SchemaError
from repro.core.lrp import LRP
from repro.core.negation import (
    DEFAULT_MAX_EXTENSIONS,
    complement_tuples,
)
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import Attribute, GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.obs import trace as obs
from repro.perf import prefilter
from repro.perf.config import PERF_COUNTERS, get_config


def _traced(op_name: str, pairwise: bool = False):
    """Wrap an algebra operation in an ``algebra.<op>`` span.

    When tracing is off the wrapper costs one :func:`repro.obs.trace.span`
    call (a global load and a branch) per *operation* — never per tuple.
    When a recorder is installed the span carries the structural cost
    attributes of :mod:`repro.analysis.counters`: input/output tuple
    counts, the result's schema width and, for pairwise operations, the
    number of tuple combinations examined; the optimization layer's
    counter deltas (prefilter rejections, cache hits, fan-outs) observed
    during the span are attached automatically.
    """

    def decorate(fn):
        span_name = f"algebra.{op_name}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            sp = obs.span(span_name)
            if sp is obs.NULL_SPAN:
                return fn(*args, **kwargs)
            with sp:
                result = fn(*args, **kwargs)
                inputs = [
                    a for a in args[:2] if isinstance(a, GeneralizedRelation)
                ]
                sp.set(
                    input_tuples=sum(len(r) for r in inputs),
                    output_tuples=len(result),
                    schema_width=len(result.schema),
                )
                if pairwise and len(inputs) == 2:
                    sp.set(pairs_examined=len(inputs[0]) * len(inputs[1]))
                return result

        return wrapper

    return decorate

# ----------------------------------------------------------------------
# DBM assembly helpers
# ----------------------------------------------------------------------


def _dbm_remap(dbm: DBM, mapping: Sequence[int], new_size: int) -> DBM:
    """Copy ``dbm``'s bounds into a fresh DBM, renumbering variables.

    ``mapping[i]`` is the new index of old variable ``i``; the zero
    variable maps to itself.
    """
    out = DBM(new_size)
    for i, j, bound in dbm.iter_bounds():
        ni = mapping[i] if i >= 0 else -1
        nj = mapping[j] if j >= 0 else -1
        if ni >= 0 and nj >= 0:
            out.add_difference(ni, nj, bound)
        elif nj < 0:
            out.add_upper(ni, bound)
        else:
            out.add_lower(nj, -bound)
    return out


def _dbm_merge_into(target: DBM, source: DBM, mapping: Sequence[int]) -> None:
    """Add ``source``'s bounds to ``target`` under an index ``mapping``."""
    for i, j, bound in source.iter_bounds():
        ni = mapping[i] if i >= 0 else -1
        nj = mapping[j] if j >= 0 else -1
        if ni >= 0 and nj >= 0:
            target.add_difference(ni, nj, bound)
        elif nj < 0:
            target.add_upper(ni, bound)
        else:
            target.add_lower(nj, -bound)


def _require_same_schema(r1: GeneralizedRelation, r2: GeneralizedRelation) -> None:
    if r1.schema != r2.schema:
        raise SchemaError(
            f"schemas differ: {r1.schema} vs {r2.schema}; "
            "use rename()/project() to align them"
        )


# ----------------------------------------------------------------------
# optimization-layer plumbing (repro.perf)
# ----------------------------------------------------------------------


def _fan_out(worker, payloads: list, extra) -> list:
    """Run a chunk worker over ``payloads``, parallel when configured.

    ``worker(chunk, extra)`` must map a payload list to a result list of
    the same length and order; fan-out concatenates contiguous chunks in
    submission order, so the output is identical for any worker count.
    """
    cfg = get_config()
    if cfg.workers > 1 and len(payloads) >= cfg.parallel_threshold:
        from repro.perf import parallel

        return parallel.run_chunked(worker, payloads, extra, cfg.workers)
    return worker(payloads, extra)


class _ProbeMemo:
    """Per-chunk memo of closed DBM probes, keyed on tuple identity."""

    __slots__ = ("_probes",)

    def __init__(self) -> None:
        self._probes: dict[int, tuple[DBM, bool]] = {}

    def __call__(self, t: GeneralizedTuple) -> tuple[DBM, bool]:
        probe = self._probes.get(id(t))
        if probe is None:
            probe = prefilter.closed_probe(t.dbm)
            self._probes[id(t)] = probe
        return probe


# ----------------------------------------------------------------------
# union / intersection (Sections 3.1, 3.2)
# ----------------------------------------------------------------------


@_traced("union")
def union(r1: GeneralizedRelation, r2: GeneralizedRelation) -> GeneralizedRelation:
    """Set union: merge the tuple lists (Section 3.1).

    Canonical-key deduplication happens on insertion; deeper redundancy
    elimination is :func:`repro.core.simplify.simplify_relation`'s job,
    mirroring the paper's "we do not consider this problem" remark.
    """
    _require_same_schema(r1, r2)
    out = GeneralizedRelation(r1.schema, r1.tuples)
    for t in r2:
        out.add(t)
    return out


@_traced("intersect", pairwise=True)
def intersect(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Set intersection: pairwise tuple intersections (Section 3.2.2).

    Unsatisfiable meets (nonempty lrp intersections whose merged
    constraints have no solution) denote the empty set and are dropped.
    With prefilters enabled, provably-empty pairs are rejected before the
    CRT + DBM work; with ``workers > 1`` the pair list fans out across a
    process pool.  Both return the same tuples as the plain double loop.
    """
    _require_same_schema(r1, r2)
    out = GeneralizedRelation.empty(r1.schema)
    pairs = [(t1, t2) for t1 in r1 for t2 in r2]
    for meets in _fan_out(_intersect_chunk, pairs, None):
        for meet in meets:
            out.add(meet)
    return out


def _intersect_chunk(
    pairs: list[tuple[GeneralizedTuple, GeneralizedTuple]], _extra
) -> list[list[GeneralizedTuple]]:
    probe = _ProbeMemo()
    return [_intersect_pair(t1, t2, probe) for t1, t2 in pairs]


def _intersect_pair(
    t1: GeneralizedTuple, t2: GeneralizedTuple, probe: _ProbeMemo
) -> list[GeneralizedTuple]:
    if get_config().prefilter_enabled:
        if t1.data != t2.data:
            return []
        if not prefilter.lrps_compatible(t1.lrps, t2.lrps):
            PERF_COUNTERS["prefilter_lrp_skip"] += 1
            return []
        closed1, sat1 = probe(t1)
        if not sat1:
            return []
        closed2, sat2 = probe(t2)
        if not sat2:
            return []
        if not prefilter.intervals_compatible(closed1, closed2):
            PERF_COUNTERS["prefilter_interval_skip"] += 1
            return []
    meet = t1.intersect(t2)
    if meet is None or not meet.dbm.copy().close():
        return []
    return [meet]


# ----------------------------------------------------------------------
# subtraction (Section 3.3, Figure 1)
# ----------------------------------------------------------------------


def lrp_subtract_pieces(
    minuend: LRP, meet: LRP
) -> list[tuple[LRP, int | None, int | None]]:
    """Subtract ``meet`` (a sub-lrp of ``minuend``) from ``minuend``.

    Returns pieces ``(lrp, upper, lower)`` whose union is the difference;
    ``upper``/``lower`` are optional extra unary bounds (``X <= upper``,
    ``X >= lower``) needed when a single point is carved out of an
    infinite progression — a case the paper's Sub never meets because it
    subtracts equal-period lrps, but which arises naturally when one
    operand is a singleton.
    """
    if meet == minuend:
        return []
    if minuend.period == 0:
        # meet ⊆ {c} and meet != minuend means meet is empty: impossible
        # here because callers pass a nonempty intersection.
        raise ReproValueError("nonempty sub-lrp of a singleton must equal it")
    if meet.period == 0:
        point = meet.offset
        return [
            (minuend, point - 1, None),
            (minuend, None, point + 1),
        ]
    pieces = minuend.split(meet.period)
    return [(piece, None, None) for piece in pieces if piece != meet]


def subtract_tuples(
    t1: GeneralizedTuple, t2: GeneralizedTuple
) -> list[GeneralizedTuple]:
    """Subtract one generalized tuple from another (Section 3.3.3).

    Implements ``t1 - t2 = (t1 - t2*) ∪ (t̄2 ∩ t1)`` (Figure 1):

    * ``t1 - t2*`` — free-extension subtraction with ``t1``'s constraints
      kept, using a disjoint "staircase" decomposition (component ``i``
      outside the intersection, components before ``i`` inside it);
    * ``t̄2 ∩ t1`` — for each atomic constraint of ``t2``, a tuple over
      the intersected free extension carrying ``t1``'s constraints plus
      the negated atom.
    """
    if t1.temporal_arity != t2.temporal_arity:
        raise SchemaError("temporal arities differ")
    if not t1.dbm.copy().close():
        return []  # t1 is empty; so is the difference
    if not t2.dbm.copy().close():
        return [t1]  # subtracting the empty set
    if t1.data != t2.data:
        return [t1]
    if get_config().prefilter_enabled:
        if not prefilter.lrps_compatible(t1.lrps, t2.lrps):
            # Some component meets are empty: same [t1] the loop below
            # would return, minus the CRT work.
            PERF_COUNTERS["prefilter_lrp_skip"] += 1
            return [t1]
        closed1, _ = prefilter.closed_probe(t1.dbm)
        closed2, _ = prefilter.closed_probe(t2.dbm)
        if not prefilter.intervals_compatible(closed1, closed2):
            # t1 ∩ t2 is empty, so the difference *is* t1 — skipping the
            # staircase decomposition returns it in one piece instead of
            # as the equivalent carved-up union.
            PERF_COUNTERS["prefilter_subtract_skip"] += 1
            return [t1]
    arity = t1.temporal_arity
    meets: list[LRP] = []
    for a, b in zip(t1.lrps, t2.lrps):
        meet = a.intersect(b)
        if meet is None:
            return [t1]
        meets.append(meet)
    out: list[GeneralizedTuple] = []
    # Part 1: t1 restricted to free extensions missing the intersection.
    for i in range(arity):
        for piece, upper, lower in lrp_subtract_pieces(t1.lrps[i], meets[i]):
            lrps = list(t1.lrps)
            for prefix in range(i):
                lrps[prefix] = meets[prefix]
            lrps[i] = piece
            dbm = t1.dbm.copy()
            if upper is not None:
                dbm.add_upper(i, upper)
            if lower is not None:
                dbm.add_lower(i, lower)
            out.append(GeneralizedTuple(tuple(lrps), dbm, t1.data))
    # Part 2: points on the shared free extension violating t2's constraints.
    for i, j, bound in t2.dbm.iter_bounds():
        dbm = t1.dbm.copy()
        if i >= 0 and j >= 0:
            dbm.add_difference(j, i, -bound - 1)
        elif j < 0:
            dbm.add_lower(i, bound + 1)
        else:
            dbm.add_upper(j, -bound - 1)
        out.append(GeneralizedTuple(tuple(meets), dbm, t1.data))
    return [t for t in out if t.dbm.copy().close()]


@_traced("subtract", pairwise=True)
def subtract(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Set difference, folding tuple subtraction over ``r2`` (Section 3.3.2).

    Each minuend tuple's fold is independent of the others, so with
    ``workers > 1`` the minuends fan out across a process pool.
    """
    _require_same_schema(r1, r2)
    out = GeneralizedRelation.empty(r1.schema)
    minuends = list(r1)
    subtrahends = list(r2)
    for survivors in _fan_out(_subtract_chunk, minuends, subtrahends):
        for t in survivors:
            out.add(t)
    return out


def _subtract_chunk(
    minuends: list[GeneralizedTuple], subtrahends: list[GeneralizedTuple]
) -> list[list[GeneralizedTuple]]:
    return [_subtract_fold(t1, subtrahends) for t1 in minuends]


def _subtract_fold(
    t1: GeneralizedTuple, subtrahends: list[GeneralizedTuple]
) -> list[GeneralizedTuple]:
    current = [t1]
    for t2 in subtrahends:
        next_round: list[GeneralizedTuple] = []
        for t in current:
            next_round.extend(subtract_tuples(t, t2))
        current = _dedup(next_round)
        if not current:
            break
    return current


def _dedup(tuples: list[GeneralizedTuple]) -> list[GeneralizedTuple]:
    """Deduplicate by semantic key, dropping provably-empty tuples.

    The semantic key (see :meth:`GeneralizedTuple.semantic_key`) folds
    constraint-forced values into the lrps and singleton lrps into the
    closure, so equivalent tuples produced by different operation orders
    — a pinned-DBM variant here, a singleton-lrp variant there — collapse
    to one representative instead of accumulating across the fold.
    """
    seen: set[tuple] = set()
    out: list[GeneralizedTuple] = []
    for t in tuples:
        key = t.semantic_key()
        if key[0] == "EMPTY":
            continue
        if key not in seen:
            seen.add(key)
            out.append(t)
    return out


# ----------------------------------------------------------------------
# projection (Section 3.4)
# ----------------------------------------------------------------------


@_traced("project")
def project(
    relation: GeneralizedRelation,
    names: Sequence[str],
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> GeneralizedRelation:
    """Project onto the named attributes, in the given order.

    Temporal eliminations go through the paper's normalization
    (Theorem 3.2) restricted to the constraint-connected cluster of the
    dropped attributes — the "partial normalization" optimization of
    Section 3.4 — and are integer-exact by Theorem 3.1.  Re-orderings and
    data-only changes never normalize.
    """
    schema = relation.schema
    for name in names:
        if not schema.has(name):
            raise SchemaError(f"cannot project onto unknown attribute {name!r}")
    if len(set(names)) != len(names):
        raise SchemaError("projection attribute list has duplicates")
    new_attrs = tuple(schema.attribute(name) for name in names)
    new_schema = Schema(new_attrs)
    keep_t = [
        schema.temporal_index(a.name) for a in new_attrs if a.temporal
    ]
    keep_d = [
        schema.data_index(a.name) for a in new_attrs if not a.temporal
    ]
    dropped_t = [
        i
        for i in range(schema.temporal_arity)
        if i not in set(keep_t)
    ]
    out = GeneralizedRelation.empty(new_schema)
    for gtuple in relation:
        data = tuple(gtuple.data[i] for i in keep_d)
        if not dropped_t:
            projected_dbm = gtuple.dbm.copy().project(keep_t)
            # Unsatisfiable tuples denote the empty set; dropping them is
            # semantics-preserving and keeps stored DBMs marker-free.
            if not projected_dbm.is_satisfiable():
                continue
            out.add(
                GeneralizedTuple(
                    lrps=tuple(gtuple.lrps[i] for i in keep_t),
                    dbm=projected_dbm,
                    data=data,
                )
            )
            continue
        for projected in project_tuple_temporal(
            gtuple, keep_t, dropped_t, max_tuples=max_tuples
        ):
            out.add(
                GeneralizedTuple(
                    lrps=projected.lrps, dbm=projected.dbm, data=data
                )
            )
    return out


def project_tuple_temporal(
    gtuple: GeneralizedTuple,
    keep: Sequence[int],
    dropped: Sequence[int],
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> list[GeneralizedTuple]:
    """Eliminate the ``dropped`` temporal attributes from one tuple.

    Only the constraint-connected cluster of the dropped attributes is
    normalized; attributes outside the cluster keep their lrps and
    mutual constraints untouched.
    """
    if not gtuple.dbm.copy().close():
        return []  # empty tuple: empty projection
    cluster = _constraint_cluster(gtuple, dropped)
    cluster_order = sorted(cluster)
    cluster_pos = {attr: idx for idx, attr in enumerate(cluster_order)}
    outside = [i for i in range(gtuple.temporal_arity) if i not in cluster]
    outside_pos = {attr: idx for idx, attr in enumerate(outside)}
    # Period of the cluster only.
    k = 1
    for i in cluster_order:
        if gtuple.lrps[i].period != 0:
            k = lcm(k, gtuple.lrps[i].period)
    # Split cluster lrps; explosion bounded by max_tuples.
    split_sizes = 1
    for i in cluster_order:
        if gtuple.lrps[i].period != 0:
            split_sizes *= k // gtuple.lrps[i].period
    if split_sizes > max_tuples:
        from repro.core.errors import NormalizationLimitError

        raise NormalizationLimitError(
            f"projection would normalize into {split_sizes} tuples "
            f"(limit {max_tuples})"
        )
    # Partial normalization's blow-up parameter (Section 3.4/3.8).
    PERF_COUNTERS["normalize_expansion"] += split_sizes
    import itertools

    choices = [
        gtuple.lrps[i].split(k) if gtuple.lrps[i].period != 0 else [gtuple.lrps[i]]
        for i in cluster_order
    ]
    cluster_bounds = []
    outside_bounds = []
    for i, j, bound in gtuple.dbm.iter_bounds():
        members = {x for x in (i, j) if x >= 0}
        if members & cluster:
            cluster_bounds.append((i, j, bound))
        else:
            outside_bounds.append((i, j, bound))
    kept_cluster = [cluster_pos[i] for i in cluster_order if i not in set(dropped)]
    results: list[GeneralizedTuple] = []
    for combo in itertools.product(*choices):
        offsets = {
            attr: lrp.offset for attr, lrp in zip(cluster_order, combo)
        }
        singles = {
            attr: lrp.period == 0 for attr, lrp in zip(cluster_order, combo)
        }
        n_dbm = DBM(len(cluster_order))
        for attr in cluster_order:
            if singles[attr]:
                n_dbm.add_value(cluster_pos[attr], 0)
        ok = True
        for i, j, bound in cluster_bounds:
            ci = offsets[i] if i >= 0 else 0
            cj = offsets[j] if j >= 0 else 0
            n_bound = (bound - ci + cj) // k
            ni = cluster_pos[i] if i >= 0 else -1
            nj = cluster_pos[j] if j >= 0 else -1
            if ni >= 0 and nj >= 0:
                n_dbm.add_difference(ni, nj, n_bound)
            elif nj < 0:
                n_dbm.add_upper(ni, n_bound)
            else:
                n_dbm.add_lower(nj, -n_bound)
        if not n_dbm.close():
            continue
        projected_n = n_dbm.project(kept_cluster)
        if not projected_n.close():
            continue
        kept_cluster_attrs = [i for i in cluster_order if i not in set(dropped)]
        # Assemble the output tuple in `keep` order.
        lrps: list[LRP] = []
        for attr in keep:
            if attr in cluster:
                lrp = combo[cluster_order.index(attr)]
                lrps.append(lrp)
            else:
                lrps.append(gtuple.lrps[attr])
        new_index = {attr: idx for idx, attr in enumerate(keep)}
        out_dbm = DBM(len(keep))
        # Cluster constraints, mapped back to X-space.
        kept_cluster_index = {
            attr: idx for idx, attr in enumerate(kept_cluster_attrs)
        }
        for i, j, bound in projected_n.iter_bounds():
            ai = kept_cluster_attrs[i] if i >= 0 else -1
            aj = kept_cluster_attrs[j] if j >= 0 else -1
            if ai >= 0 and singles[ai] and aj < 0:
                continue
            if aj >= 0 and singles[aj] and ai < 0:
                continue
            ci = offsets[ai] if ai >= 0 else 0
            cj = offsets[aj] if aj >= 0 else 0
            x_bound = k * bound + ci - cj
            ni = new_index[ai] if ai >= 0 else -1
            nj = new_index[aj] if aj >= 0 else -1
            if ni >= 0 and nj >= 0:
                out_dbm.add_difference(ni, nj, x_bound)
            elif nj < 0:
                out_dbm.add_upper(ni, x_bound)
            else:
                out_dbm.add_lower(nj, -x_bound)
        # Outside constraints survive verbatim (they touch no cluster attr).
        for i, j, bound in outside_bounds:
            ni = new_index[i] if i >= 0 else -1
            nj = new_index[j] if j >= 0 else -1
            if ni >= 0 and nj >= 0:
                out_dbm.add_difference(ni, nj, bound)
            elif i >= 0 and nj < 0:
                out_dbm.add_upper(ni, bound)
            else:
                out_dbm.add_lower(nj, -bound)
        results.append(
            GeneralizedTuple(tuple(lrps), out_dbm, gtuple.data)
        )
    return results


def _constraint_cluster(
    gtuple: GeneralizedTuple, seeds: Sequence[int]
) -> set[int]:
    """Attributes transitively constraint-connected to the ``seeds``."""
    adjacency: dict[int, set[int]] = {
        i: set() for i in range(gtuple.temporal_arity)
    }
    for i, j, _bound in gtuple.dbm.iter_bounds():
        if i >= 0 and j >= 0:
            adjacency[i].add(j)
            adjacency[j].add(i)
    cluster = set(seeds)
    frontier = list(seeds)
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency[node]:
            if neighbor not in cluster:
                cluster.add(neighbor)
                frontier.append(neighbor)
    return cluster


# ----------------------------------------------------------------------
# selection (Section 3.5)
# ----------------------------------------------------------------------


@_traced("select")
def select(
    relation: GeneralizedRelation, condition: str | Sequence[Atom]
) -> GeneralizedRelation:
    """Add restricted constraints to every tuple (Section 3.5).

    The condition refers to the schema's temporal attribute names; data
    selections go through :func:`select_data`.
    """
    atoms = (
        parse_atoms(condition) if isinstance(condition, str) else list(condition)
    )
    for atom in atoms:
        _check_temporal_atom(relation.schema, atom)
    extra = atoms_to_dbm(atoms, relation.schema.temporal_names)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        merged = gtuple.dbm.intersect(extra)
        # Satisfiability is checked on a copy so the stored constraint
        # set stays as written (negation cost tracks the written atoms).
        if merged.copy().close():
            out.add(GeneralizedTuple(gtuple.lrps, merged, gtuple.data))
    return out


def _check_temporal_atom(schema: Schema, atom: Atom) -> None:
    names = set(schema.temporal_names)
    if atom.left not in names:
        raise SchemaError(
            f"selection atom {atom} references non-temporal or unknown "
            f"attribute {atom.left!r}"
        )
    if isinstance(atom, VarVarAtom) and atom.right not in names:
        raise SchemaError(
            f"selection atom {atom} references non-temporal or unknown "
            f"attribute {atom.right!r}"
        )


@_traced("select_data")
def select_data(
    relation: GeneralizedRelation, name: str, value: Hashable
) -> GeneralizedRelation:
    """Keep tuples whose data attribute ``name`` equals ``value``."""
    idx = relation.schema.data_index(name)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        if gtuple.data[idx] == value:
            out.add(gtuple)
    return out


@_traced("select_data_equal")
def select_data_equal(
    relation: GeneralizedRelation, name1: str, name2: str
) -> GeneralizedRelation:
    """Keep tuples whose data attributes ``name1`` and ``name2`` coincide."""
    i1 = relation.schema.data_index(name1)
    i2 = relation.schema.data_index(name2)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        if gtuple.data[i1] == gtuple.data[i2]:
            out.add(gtuple)
    return out


# ----------------------------------------------------------------------
# cross product and join (Sections 3.6, 3.7)
# ----------------------------------------------------------------------


@_traced("product", pairwise=True)
def product(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Cross product: all tuple combinations, constraints side by side."""
    overlap = set(r1.schema.names) & set(r2.schema.names)
    if overlap:
        raise SchemaError(
            f"cross product requires disjoint attribute names; shared: "
            f"{sorted(overlap)} (rename first)"
        )
    new_schema = Schema(r1.schema.attributes + r2.schema.attributes)
    a1 = r1.schema.temporal_arity
    a2 = r2.schema.temporal_arity
    out = GeneralizedRelation.empty(new_schema)
    probe = _ProbeMemo()
    hoist = get_config().prefilter_enabled
    for t1 in r1:
        sat1 = probe(t1)[1] if hoist else t1.dbm.copy().close()
        if not sat1:
            continue  # empty tuple: nothing to combine
        for t2 in r2:
            sat2 = probe(t2)[1] if hoist else t2.dbm.copy().close()
            if not sat2:
                continue
            dbm = DBM(a1 + a2)
            _dbm_merge_into(dbm, t1.dbm, list(range(a1)))
            _dbm_merge_into(dbm, t2.dbm, [a1 + i for i in range(a2)])
            out.add(
                GeneralizedTuple(
                    lrps=t1.lrps + t2.lrps,
                    dbm=dbm,
                    data=t1.data + t2.data,
                )
            )
    return out


@_traced("join", pairwise=True)
def join(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> GeneralizedRelation:
    """Natural join on all shared attribute names (Section 3.7).

    Shared temporal attributes are intersected (lrp CRT + constraint
    union); shared data attributes must hold equal values.  The result
    schema is ``r1``'s attributes followed by ``r2``'s non-shared ones.
    """
    shared = [a for a in r1.schema.attributes if r2.schema.has(a.name)]
    for attr in shared:
        other = r2.schema.attribute(attr.name)
        if other.temporal != attr.temporal:
            raise SchemaError(
                f"attribute {attr.name!r} is temporal on one side and "
                "data on the other"
            )
    r2_only = [a for a in r2.schema.attributes if not r1.schema.has(a.name)]
    new_schema = Schema(r1.schema.attributes + tuple(r2_only))
    a1 = r1.schema.temporal_arity
    result_t_names = new_schema.temporal_names
    # Map each side's temporal attribute positions into result positions.
    map1 = [result_t_names.index(n) for n in r1.schema.temporal_names]
    map2 = [result_t_names.index(n) for n in r2.schema.temporal_names]
    shared_t = [
        (r1.schema.temporal_index(a.name), r2.schema.temporal_index(a.name))
        for a in shared
        if a.temporal
    ]
    shared_d = [
        (r1.schema.data_index(a.name), r2.schema.data_index(a.name))
        for a in shared
        if not a.temporal
    ]
    d2_only_idx = [
        r2.schema.data_index(a.name) for a in r2_only if not a.temporal
    ]
    t2_only = [
        (r2.schema.temporal_index(a.name), result_t_names.index(a.name))
        for a in r2_only
        if a.temporal
    ]
    context = (
        a1,
        map1,
        map2,
        shared_t,
        shared_d,
        t2_only,
        d2_only_idx,
        len(result_t_names),
    )
    out = GeneralizedRelation.empty(new_schema)
    pairs = [(t1, t2) for t1 in r1 for t2 in r2]
    for joined in _fan_out(_join_chunk, pairs, context):
        if joined is not None:
            out.add(joined)
    return out


def _join_chunk(
    pairs: list[tuple[GeneralizedTuple, GeneralizedTuple]], context: tuple
) -> list[GeneralizedTuple | None]:
    probe = _ProbeMemo()
    return [_join_pair(t1, t2, context, probe) for t1, t2 in pairs]


def _join_pair(
    t1: GeneralizedTuple,
    t2: GeneralizedTuple,
    context: tuple,
    probe: _ProbeMemo,
) -> GeneralizedTuple | None:
    (a1, map1, map2, shared_t, shared_d, t2_only, d2_only_idx, arity) = context
    pre = get_config().prefilter_enabled
    if any(t1.data[i] != t2.data[j] for i, j in shared_d):
        return None
    if pre and shared_t:
        if not prefilter.lrps_compatible(t1.lrps, t2.lrps, shared_t):
            PERF_COUNTERS["prefilter_lrp_skip"] += 1
            return None
    if pre:
        closed1, sat1 = probe(t1)
        if not sat1:
            return None
        closed2, sat2 = probe(t2)
        if not sat2:
            return None
        if shared_t and not prefilter.intervals_compatible(
            closed1, closed2, shared_t
        ):
            PERF_COUNTERS["prefilter_interval_skip"] += 1
            return None
    else:
        if not t1.dbm.copy().close() or not t2.dbm.copy().close():
            return None
    lrps: list[LRP | None] = [None] * arity
    for i1, pos in zip(range(a1), map1):
        lrps[pos] = t1.lrps[i1]
    for i1, i2 in shared_t:
        meet = t1.lrps[i1].intersect(t2.lrps[i2])
        if meet is None:
            return None
        lrps[map1[i1]] = meet
    for i2, pos in t2_only:
        lrps[pos] = t2.lrps[i2]
    dbm = DBM(arity)
    _dbm_merge_into(dbm, t1.dbm, map1)
    _dbm_merge_into(dbm, t2.dbm, map2)
    if not dbm.copy().close():
        return None
    data = t1.data + tuple(t2.data[i] for i in d2_only_idx)
    return GeneralizedTuple(tuple(lrps), dbm, data)


# ----------------------------------------------------------------------
# complement (Appendix A.6)
# ----------------------------------------------------------------------


@_traced("complement")
def complement(
    relation: GeneralizedRelation,
    data_domains: dict[str, Sequence[Hashable]] | None = None,
    max_tuples: int = DEFAULT_MAX_TUPLES,
    max_extensions: int = DEFAULT_MAX_EXTENSIONS,
) -> GeneralizedRelation:
    """Complement w.r.t. ``Z^k`` on the temporal sort.

    Purely temporal relations need no extra input.  Relations with data
    attributes need ``data_domains``: a finite universe per data
    attribute (the temporal sort is still complemented symbolically over
    all of Z).
    """
    schema = relation.schema
    arity = schema.temporal_arity
    if schema.data_arity == 0:
        tuples = complement_tuples(
            list(relation),
            arity=arity,
            max_tuples=max_tuples,
            max_extensions=max_extensions,
        )
        return GeneralizedRelation(schema, tuples)
    if data_domains is None:
        raise DomainError(
            "complement of a relation with data attributes requires "
            "data_domains (a finite universe per data attribute)"
        )
    for name in schema.data_names:
        if name not in data_domains:
            raise DomainError(f"data_domains is missing attribute {name!r}")
    import itertools

    by_data: dict[tuple, list[GeneralizedTuple]] = {}
    for gtuple in relation:
        by_data.setdefault(gtuple.data, []).append(gtuple)
    out = GeneralizedRelation.empty(schema)
    domains = [list(data_domains[name]) for name in schema.data_names]
    for data in itertools.product(*domains):
        group = by_data.get(tuple(data), [])
        for t in complement_tuples(
            group,
            arity=arity,
            data=tuple(data),
            max_tuples=max_tuples,
            max_extensions=max_extensions,
        ):
            out.add(t)
    return out


# ----------------------------------------------------------------------
# renaming and shifting (support operations for the query engine)
# ----------------------------------------------------------------------


@_traced("rename")
def rename(
    relation: GeneralizedRelation, mapping: dict[str, str]
) -> GeneralizedRelation:
    """Rename attributes; tuple contents are untouched."""
    for old in mapping:
        if not relation.schema.has(old):
            raise SchemaError(f"cannot rename unknown attribute {old!r}")
    new_attrs = tuple(
        Attribute(mapping.get(a.name, a.name), a.temporal)
        for a in relation.schema.attributes
    )
    return GeneralizedRelation(Schema(new_attrs), relation.tuples)


@_traced("shift_column")
def shift_column(
    relation: GeneralizedRelation, name: str, delta: int
) -> GeneralizedRelation:
    """Shift a temporal column: each point's ``name`` value moves by ``delta``.

    Used to evaluate successor terms: the atom ``P(t + c, ...)`` holds
    exactly when ``(t + c, ...) ∈ P``, i.e. ``t`` ranges over ``P``'s
    first column shifted by ``-c``.
    """
    if delta == 0:
        return relation
    idx = relation.schema.temporal_index(name)
    out = GeneralizedRelation.empty(relation.schema)
    for gtuple in relation:
        lrp = gtuple.lrps[idx]
        shifted = LRP.make(lrp.offset + delta, lrp.period)
        lrps = list(gtuple.lrps)
        lrps[idx] = shifted
        out.add(
            GeneralizedTuple(
                tuple(lrps),
                gtuple.dbm.shift_variable(idx, delta),
                gtuple.data,
            )
        )
    return out


def equivalent(
    r1: GeneralizedRelation, r2: GeneralizedRelation
) -> bool:
    """Semantic equality: both differences are empty."""
    return subtract(r1, r2).is_empty() and subtract(r2, r1).is_empty()
