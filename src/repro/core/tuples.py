"""Generalized tuples (Definition 2.2 of the paper).

A generalized tuple of temporal arity ``k`` and data arity ``l`` pairs a
vector of linear repeating points with a conjunction of restricted
constraints on the temporal attributes, plus ordinary data values.  It
denotes the (possibly infinite) set of concrete tuples obtained by
letting each repetition variable range over Z subject to the constraints.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.errors import ReproValueError


@dataclass
class GeneralizedTuple:
    """One generalized tuple: lrps + constraints + data values.

    ``lrps[i]`` is the value set of the i-th temporal attribute and the
    :class:`DBM` constrains the temporal attributes positionally (variable
    ``i`` of the DBM is temporal attribute ``i``).  ``data`` holds the
    values of the data attributes, in schema order.
    """

    lrps: tuple[LRP, ...]
    dbm: DBM
    data: tuple[Hashable, ...] = ()
    _key: tuple | None = field(default=None, repr=False, compare=False)
    _skey: tuple | None = field(default=None, repr=False, compare=False)
    #: Projection plans memoized per (keep, dropped, limit), like the
    #: key memos above: tuples (and their DBMs) are never mutated after
    #: construction, so derived artifacts may live on the object.  Read
    #: and written only when the optimization layer's caches are on.
    _plans: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.lrps = tuple(self.lrps)
        self.data = tuple(self.data)
        if self.dbm.size != len(self.lrps):
            raise ReproValueError(
                f"DBM has {self.dbm.size} variables but tuple has "
                f"{len(self.lrps)} temporal attributes"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def make(
        cls,
        lrps: Sequence[LRP | int | str],
        data: Sequence[Hashable] = (),
        dbm: DBM | None = None,
    ) -> GeneralizedTuple:
        """Build a tuple, coercing ints to singleton lrps and parsing strings."""
        coerced: list[LRP] = []
        for item in lrps:
            if isinstance(item, LRP):
                coerced.append(item)
            elif isinstance(item, int):
                coerced.append(LRP.point(item))
            else:
                coerced.append(LRP.parse(item))
        if dbm is None:
            dbm = DBM(len(coerced))
        return cls(lrps=tuple(coerced), dbm=dbm, data=tuple(data))

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------

    @property
    def temporal_arity(self) -> int:
        """Number of temporal attributes."""
        return len(self.lrps)

    @property
    def data_arity(self) -> int:
        """Number of data attributes."""
        return len(self.data)

    def free_extension(self) -> GeneralizedTuple:
        """The tuple without its constraints (Definition 3.1)."""
        return GeneralizedTuple(
            lrps=self.lrps, dbm=DBM(len(self.lrps)), data=self.data
        )

    def has_constraints(self) -> bool:
        """Whether any non-trivial constraint is present."""
        return any(True for _ in self.dbm.iter_bounds())

    def canonical_key(self) -> tuple:
        """A hashable key: equal keys imply equal denoted point sets.

        The key combines canonical lrps, the DBM closure, and the data
        values.  (The converse does not hold: semantically equal tuples
        may differ syntactically, e.g. via constraint slack that only
        normalization removes.)
        """
        if self._key is None:
            self._key = (self.lrps, self.dbm.canonical_key(), self.data)
        return self._key

    def semantic_key(self) -> tuple:
        """A hashable key refining :meth:`canonical_key` semantically.

        Equal keys imply equal denoted point sets, and the key collapses
        two syntactic disguises the algebra's decompositions produce:

        * a singleton lrp versus an equality constraint pinning the
          attribute to the same value (the pin is folded into the
          closure either way);
        * a periodic lrp whose constraints force a single value versus
          that value as a singleton lrp (the forced value is folded into
          the lrp).

        Every tuple denoting the empty set — an unsatisfiable constraint
        system, or a forced value outside its lrp — maps to the single
        key ``("EMPTY", arity)``.
        """
        if self._skey is not None:
            return self._skey
        arity = len(self.lrps)
        probe = self.dbm.copy()
        for i, lrp in enumerate(self.lrps):
            if lrp.period == 0:
                probe.add_value(i, lrp.offset)
        if not probe.close():
            self._skey = ("EMPTY", arity)
            return self._skey
        lrps = list(self.lrps)
        for i, lrp in enumerate(lrps):
            if lrp.period == 0:
                continue
            low = probe.lower(i)
            if low is not None and low == probe.upper(i):
                if not lrp.contains(low):
                    self._skey = ("EMPTY", arity)
                    return self._skey
                lrps[i] = LRP.point(low)
        self._skey = (tuple(lrps), probe.canonical_key(), self.data)
        return self._skey

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedTuple):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    def contains(
        self, temporal: Sequence[int], data: Sequence[Hashable] | None = None
    ) -> bool:
        """Whether the concrete temporal point (and data values) belong here."""
        if len(temporal) != len(self.lrps):
            raise ReproValueError(
                f"expected {len(self.lrps)} temporal values, got {len(temporal)}"
            )
        if data is not None and tuple(data) != self.data:
            return False
        for value, lrp in zip(temporal, self.lrps):
            if not lrp.contains(value):
                return False
        return self.dbm.satisfied_by(temporal)

    def intersect(self, other: GeneralizedTuple) -> GeneralizedTuple | None:
        """Intersection of two generalized tuples (Section 3.2.2).

        Component-wise lrp intersection plus the union of both constraint
        sets.  Returns ``None`` when some component intersection is empty
        or the data values differ.  The result may still denote the empty
        set (constraints may be jointly unsatisfiable on the lattice);
        use :func:`repro.core.emptiness.tuple_is_empty` to decide.
        """
        if len(self.lrps) != len(other.lrps):
            raise ReproValueError("temporal arities differ")
        if self.data != other.data:
            return None
        merged: list[LRP] = []
        for a, b in zip(self.lrps, other.lrps):
            meet = a.intersect(b)
            if meet is None:
                return None
            merged.append(meet)
        return GeneralizedTuple(
            lrps=tuple(merged),
            dbm=self.dbm.intersect(other.dbm),
            data=self.data,
        )

    def enumerate(self, low: int, high: int) -> Iterator[tuple[int, ...]]:
        """Yield the concrete temporal points in ``[low, high]^k``.

        Enumeration prunes with the DBM's implied bounds and checks
        partial assignments against the difference constraints, so it is
        usable for the window sizes the differential tests employ.

        An inverted window (``low > high``) is uniformly empty, even for
        zero-arity tuples (whose points carry no temporal coordinates).
        """
        if low > high:
            return
        arity = len(self.lrps)
        if arity == 0:
            if self.dbm.copy().close():
                yield ()
            return
        # Work on a closed copy: enumeration must not inflate the stored
        # constraint set (negation cost tracks the written atoms).
        dbm = self.dbm.copy()
        if not dbm.close():
            return
        lows = []
        highs = []
        for i in range(arity):
            lo_i, hi_i = low, high
            dbm_lo = dbm.lower(i)
            dbm_hi = dbm.upper(i)
            if dbm_lo is not None:
                lo_i = max(lo_i, dbm_lo)
            if dbm_hi is not None:
                hi_i = min(hi_i, dbm_hi)
            lows.append(lo_i)
            highs.append(hi_i)
        assignment: list[int] = []

        def feasible(i: int, value: int) -> bool:
            for j, prior in enumerate(assignment):
                b_ij = dbm.bound(i, j)
                if b_ij is not None and value - prior > b_ij:
                    return False
                b_ji = dbm.bound(j, i)
                if b_ji is not None and prior - value > b_ji:
                    return False
            return True

        def recurse(i: int) -> Iterator[tuple[int, ...]]:
            if i == arity:
                yield tuple(assignment)
                return
            if lows[i] > highs[i]:
                return
            for value in self.lrps[i].enumerate(lows[i], highs[i]):
                if feasible(i, value):
                    assignment.append(value)
                    yield from recurse(i + 1)
                    assignment.pop()

        yield from recurse(0)

    def __str__(self) -> str:
        from repro.core.constraints import dbm_to_atoms

        names = [f"X{i + 1}" for i in range(len(self.lrps))]
        text = "[" + ", ".join(str(lrp) for lrp in self.lrps) + "]"
        atoms = dbm_to_atoms(self.dbm, names)
        if atoms:
            text += " : " + " & ".join(str(a) for a in atoms)
        if self.data:
            text += " | " + ", ".join(str(v) for v in self.data)
        return text
