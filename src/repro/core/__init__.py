"""Core data model and algebra for infinite temporal databases.

This package implements the paper's primary contribution: generalized
relations over linear repeating points with restricted constraints,
closed under the full relational algebra.
"""

from repro.core.constraints import (
    Atom,
    Op,
    VarConstAtom,
    VarVarAtom,
    parse_atom,
    parse_atoms,
)
from repro.core.dbm import DBM
from repro.core.errors import (
    ConstraintError,
    DomainError,
    EvaluationError,
    NormalizationLimitError,
    ParseError,
    ReproError,
    ReproTypeError,
    ReproValueError,
    SchemaError,
)
from repro.core.lrp import LRP
from repro.core.relations import (
    Attribute,
    GeneralizedRelation,
    Schema,
    relation,
)
from repro.core.temporal import (
    ColumnProfile,
    column_profile,
    count_points,
    is_finite,
    max_value,
    min_value,
    next_event,
    prev_event,
)
from repro.core.tuples import GeneralizedTuple

__all__ = [
    "ColumnProfile",
    "column_profile",
    "count_points",
    "is_finite",
    "max_value",
    "min_value",
    "next_event",
    "prev_event",
    "Atom",
    "Attribute",
    "ConstraintError",
    "DBM",
    "DomainError",
    "EvaluationError",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "LRP",
    "NormalizationLimitError",
    "Op",
    "ParseError",
    "ReproError",
    "ReproTypeError",
    "ReproValueError",
    "Schema",
    "SchemaError",
    "VarConstAtom",
    "VarVarAtom",
    "parse_atom",
    "parse_atoms",
    "relation",
]
