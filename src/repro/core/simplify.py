"""Redundancy elimination for generalized relations.

Section 3.1 of the paper notes that "in practice, one would also attempt
to eliminate the redundancies that might appear between the tuples of
the merged relation" but leaves the problem aside.  This module supplies
the practical pieces:

* dropping tuples that denote the empty set;
* dropping tuples *subsumed* by another single tuple (a sound, cheap
  approximation of full redundancy: exact minimization would need
  set-cover reasoning across tuples).
"""

from __future__ import annotations

from repro.core.emptiness import tuple_is_empty
from repro.core.relations import GeneralizedRelation
from repro.core.tuples import GeneralizedTuple


def tuple_subsumes(big: GeneralizedTuple, small: GeneralizedTuple) -> bool:
    """Whether ``big``'s point set contains ``small``'s.

    Checked as emptiness of ``small - big`` via the Figure 1 tuple
    subtraction, which stays symbolic (no enumeration).
    """
    from repro.core.algebra import subtract_tuples

    if big.data != small.data:
        return tuple_is_empty(small)
    return all(tuple_is_empty(piece) for piece in subtract_tuples(small, big))


def simplify_relation(relation: GeneralizedRelation) -> GeneralizedRelation:
    """Remove empty tuples and tuples subsumed by another tuple.

    The result denotes exactly the same point set.  Subsumption checks
    are pairwise (quadratic in the number of tuples); tuples are
    considered in insertion order, keeping earlier witnesses.
    """
    nonempty = [t for t in relation if not tuple_is_empty(t)]
    kept: list[GeneralizedTuple] = []
    for candidate in nonempty:
        if any(tuple_subsumes(existing, candidate) for existing in kept):
            continue
        kept = [
            existing
            for existing in kept
            if not tuple_subsumes(candidate, existing)
        ]
        kept.append(candidate)
    return GeneralizedRelation(relation.schema, kept)
