"""Emptiness decision for generalized tuples and relations (Theorem 3.5).

The paper decides nonemptiness by projecting a relation down to one
column and checking the remaining unary constraints.  With the n-space
representation of :mod:`repro.core.normalize` we can do slightly better:
a normalized tuple is nonempty iff its difference system over the free
repetition counters is satisfiable, which the DBM closure decides
directly (and integer-exactly).  The asymptotics match the theorem:
polynomial in the number of tuples and in the schema size.
"""

from __future__ import annotations

from repro.core.normalize import (
    DEFAULT_MAX_TUPLES,
    iter_normalize_tuple,
)
from repro.core.relations import GeneralizedRelation
from repro.core.tuples import GeneralizedTuple
from repro.perf.cache import normalize_cache
from repro.perf.config import PERF_COUNTERS


def tuple_is_empty(
    gtuple: GeneralizedTuple, max_tuples: int = DEFAULT_MAX_TUPLES
) -> bool:
    """Whether a generalized tuple denotes the empty set.

    Normalization is streamed and stops at the first satisfiable
    normal-form tuple, so the common case is far cheaper than a full
    normalization.  Verdicts are memoized on the written tuple form
    (simplification asks about the same tuples repeatedly).
    """
    if not gtuple.dbm.copy().close():
        # Unsatisfiable systems may carry a diagonal marker invisible to
        # iter_bounds, so they must be decided before the memo key is
        # built from the written bounds.
        return True
    cache = normalize_cache()
    key = None
    if cache is not None:
        key = (
            "empty",
            max_tuples,
            gtuple.lrps,
            tuple(gtuple.dbm.iter_bounds()),
        )
        verdict = cache.get(key)
        if verdict is not None:
            PERF_COUNTERS["empty_cache_hit"] += 1
            return verdict
        PERF_COUNTERS["empty_cache_miss"] += 1
    empty = True
    for _ in iter_normalize_tuple(gtuple, max_tuples=max_tuples):
        empty = False
        break
    if key is not None:
        cache.put(key, empty)
    return empty


def relation_is_empty(
    relation: GeneralizedRelation, max_tuples: int = DEFAULT_MAX_TUPLES
) -> bool:
    """Whether a generalized relation denotes the empty set."""
    return all(tuple_is_empty(t, max_tuples=max_tuples) for t in relation)


def tuple_witness(
    gtuple: GeneralizedTuple, max_tuples: int = DEFAULT_MAX_TUPLES
) -> tuple[int, ...] | None:
    """Return one concrete temporal point of the tuple, or ``None``.

    The witness is reconstructed from an n-space DBM solution:
    ``X_i = c_i + k * n_i``.
    """
    for normalized in iter_normalize_tuple(gtuple, max_tuples=max_tuples):
        counters = normalized.n_dbm.solution()
        if counters is None:  # pragma: no cover - filtered by iterator
            continue
        k = normalized.period
        return tuple(
            c + k * n for c, n in zip(normalized.offsets, counters)
        )
    return None


def relation_witness(
    relation: GeneralizedRelation, max_tuples: int = DEFAULT_MAX_TUPLES
) -> tuple | None:
    """Return one concrete point (schema order) of the relation, or ``None``."""
    for gtuple in relation:
        temporal = tuple_witness(gtuple, max_tuples=max_tuples)
        if temporal is not None:
            return relation.join_point(temporal, gtuple.data)
    return None


def count_in_window(
    relation: GeneralizedRelation, low: int, high: int
) -> int:
    """Number of concrete points with temporal coordinates in ``[low, high]``."""
    return sum(1 for _ in relation.enumerate(low, high))
