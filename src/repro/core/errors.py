"""Exception hierarchy for the repro library.

Every error the library raises on a public code path derives from
:class:`ReproError`, so ``except ReproError`` is the one catch-all a
caller needs.  The hierarchy::

    ReproError
    ├── SchemaError              incompatible/unknown attributes
    ├── ConstraintError          malformed restricted constraints
    ├── ParseError               lrp / tuple / formula / query text
    ├── NormalizationLimitError  Section 3.8 blow-up guard
    ├── DomainError              missing finite data universe
    ├── EvaluationError          first-order query evaluation
    ├── StorageError             durable-storage protocol violations
    │   └── RecoveryError        a persisted database cannot be recovered
    ├── ServeError               wire-protocol / served-request failures
    ├── ReproValueError          invalid argument value (also ValueError)
    └── ReproTypeError           invalid argument type (also TypeError)

:class:`ReproValueError` and :class:`ReproTypeError` dual-inherit from
the corresponding builtins, so code written against the historical
``ValueError`` / ``TypeError`` raise sites keeps working while
``except ReproError`` now covers them too.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """An operation was applied to relations with incompatible schemas."""


class ConstraintError(ReproError):
    """A constraint is malformed or refers to unknown attributes."""


class ParseError(ReproError):
    """A textual lrp, tuple, relation, formula or query failed to parse.

    ``position`` is the byte offset into the source text.  When the
    raiser also knows the source (the query parser does), it passes
    ``line`` and ``column`` (both 1-based) so multi-line queries report
    a human-addressable location instead of a raw offset.
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        *,
        line: int | None = None,
        column: int | None = None,
    ) -> None:
        if line is not None and column is not None:
            message = f"{message} (at line {line}, column {column})"
        elif position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column


class NormalizationLimitError(ReproError):
    """Normalization would exceed the configured tuple-explosion budget.

    The paper (Section 3.8) notes that normalization may blow up when the
    periods in a database "are not closely related"; this error makes
    that blow-up an explicit, catchable condition instead of an OOM.
    """


class DomainError(ReproError):
    """An operation needs a finite data domain that was not supplied.

    Complementing a relation with data attributes requires a universe for
    the data sort; the temporal sort is complemented symbolically over Z.
    """


class EvaluationError(ReproError):
    """A first-order query could not be evaluated."""


class StorageError(ReproError):
    """The durable-storage protocol was violated.

    Raised for malformed/corrupt on-disk records, operations on a
    closed or crashed engine, and commits against a database that was
    not opened from a path.  The deliberately injected crash used by
    the fault harness is *not* a :class:`StorageError` — see
    :class:`repro.storage.faults.InjectedCrash`.
    """


class RecoveryError(StorageError):
    """A persisted database could not be recovered on open.

    This means real corruption beyond what the commit protocol can
    tolerate (for example, a snapshot file referenced by the manifest
    failing its checksum) — torn WAL tails and orphan snapshot files
    are repaired silently and do not raise.
    """


class ServeError(ReproError):
    """A served request failed: malformed frame, unknown op, server error.

    Raised by the wire layer (:mod:`repro.serve.protocol`) for frames
    that cannot be decoded, and by the client when the server answers a
    request with ``ok: false`` — the server-side error type and message
    are preserved in :attr:`remote_type`.
    """

    def __init__(self, message: str, remote_type: str | None = None) -> None:
        super().__init__(message)
        self.remote_type = remote_type


class ReproValueError(ReproError, ValueError):
    """An argument has an invalid value.

    Dual-inherits :class:`ValueError` for backward compatibility with
    callers that catch the builtin.
    """


class ReproTypeError(ReproError, TypeError):
    """An argument has an invalid type (or an AST node is unexpected).

    Dual-inherits :class:`TypeError` for backward compatibility with
    callers that catch the builtin.
    """
