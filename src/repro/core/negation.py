"""Negation / complement of generalized relations (Appendix A.6).

The complement of a relation ``r`` of temporal arity ``m``, normalized to
period ``k``, is computed per the paper:

* enumerate all ``k^m`` free extensions of period ``k``;
* a free extension not appearing in ``r`` contributes one unconstrained
  tuple;
* a free extension appearing in ``r`` with constraint systems
  ``D_1 ∨ ... ∨ D_p`` contributes the tuples of ``¬D_1 ∧ ... ∧ ¬D_p``,
  expanded to disjunctive normal form *incrementally*: conjoin one
  negated system at a time and reduce after every step, so that the
  intermediate representation stays within the ``(N+1)^{m(m+1)}`` bound
  of Theorem A.1 instead of blowing up to ``(m(m+1))^N`` terms.

Singleton lrps are first "de-singularized": ``{c}`` becomes the periodic
lrp ``(c mod k) + kZ`` with its repetition counter pinned by constraints,
so that every tuple's free extension is a plain offset vector in
``[0, k)^m`` and the enumeration above is exhaustive.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.core.dbm import DBM
from repro.core.errors import NormalizationLimitError
from repro.core.normalize import (
    DEFAULT_MAX_TUPLES,
    NormalizedTuple,
    normalize_relation_tuples,
)
from repro.core.tuples import GeneralizedTuple
from repro.perf import prefilter
from repro.perf.config import PERF_COUNTERS, get_config

DEFAULT_MAX_EXTENSIONS = 1_000_000


def desingularize(nt: NormalizedTuple) -> NormalizedTuple:
    """Rewrite singleton attributes as constrained periodic attributes.

    A singleton lrp ``{c}`` equals the periodic lrp ``(c mod k) + kZ``
    intersected with ``X = c``; in n-space the pin moves from ``n = 0``
    (with origin ``c``) to ``n = (c - c mod k) / k`` (with origin
    ``c mod k``).  The denoted point set is unchanged.
    """
    if not any(nt.singleton):
        return nt
    k = nt.period
    new_offsets: list[int] = []
    dbm = nt.n_dbm.copy()
    for i, (c, is_single) in enumerate(zip(nt.offsets, nt.singleton)):
        if not is_single:
            new_offsets.append(c)
            continue
        reduced = c % k
        shift = (c - reduced) // k
        new_offsets.append(reduced)
        if shift != 0:
            # Counter re-origins: n_new = n_old + shift.  shift_variable
            # implements n := n + delta on the variable's value set, so
            # delta = +shift moves the pin n_old = 0 to n_new = shift.
            dbm = dbm.shift_variable(i, shift)
    return NormalizedTuple(
        period=k,
        offsets=tuple(new_offsets),
        singleton=tuple(False for _ in nt.singleton),
        n_dbm=dbm,
        data=nt.data,
    )


def negate_dbm(dbm: DBM, size: int) -> list[DBM]:
    """Return DBMs whose union is the complement of ``dbm``'s solution set.

    Each stored finite bound ``v_i - v_j <= b`` contributes one disjunct
    ``v_j - v_i <= -b - 1`` (the integer negation).  An unconstrained
    system has an empty complement; an unsatisfiable one complements to
    the single unconstrained system.
    """
    bounds = list(dbm.iter_bounds())
    if not dbm.copy().close():
        return [DBM(size)]
    out: list[DBM] = []
    for i, j, bound in bounds:
        piece = DBM(size)
        if i >= 0 and j >= 0:
            piece.add_difference(j, i, -bound - 1)
        elif j < 0:
            # negation of v_i <= bound
            piece.add_lower(i, bound + 1)
        else:
            # negation of v_j >= -bound
            piece.add_upper(j, -bound - 1)
        out.append(piece)
    return out


def complement_constraint_systems(
    systems: Sequence[DBM], size: int
) -> list[DBM]:
    """Compute ``¬D_1 ∧ ... ∧ ¬D_p`` as a reduced list of DBMs.

    This is the incremental DNF expansion of Appendix A.6: conjoin one
    negated system at a time, dropping unsatisfiable conjuncts and
    deduplicating by canonical closure after every step.
    """
    current: list[DBM] = [DBM(size)]
    for system in systems:
        negated = negate_dbm(system, size)
        if not negated:
            return []
        pre = get_config().prefilter_enabled
        # Every negated piece carries exactly one written bound, so an
        # O(1) closed-path test decides whether conjoining it can stay
        # satisfiable — skipping the pieces the canonical-key check
        # below would discard anyway, without building the merge.
        piece_bounds = (
            [next(iter(piece.iter_bounds()), None) for piece in negated]
            if pre
            else None
        )
        next_round: dict[tuple, DBM] = {}
        for conjunct in current:
            closed_conjunct = (
                prefilter.closed_probe(conjunct)[0] if pre else None
            )
            for index, piece in enumerate(negated):
                if piece_bounds is not None:
                    bound = piece_bounds[index]
                    if bound is not None and not prefilter.added_bound_satisfiable(
                        closed_conjunct, *bound
                    ):
                        PERF_COUNTERS["prefilter_negation_skip"] += 1
                        continue
                merged = conjunct.intersect(piece)
                # Satisfiability and deduplication both go through the
                # canonical key, which closes a *copy*: the stored
                # bounds must remain exactly the written ones, because
                # the decomposed complement's counters use per-column
                # scales and closure would synthesize cross-scale
                # difference bounds (sound in n-space, untranslatable
                # to X-space).
                key = merged.canonical_key()
                if key == ("UNSAT", size):
                    continue
                if key not in next_round:
                    next_round[key] = merged
        current = _drop_subsumed(list(next_round.values()))
        if not current:
            return []
    return current


def _drop_subsumed(systems: list[DBM]) -> list[DBM]:
    """Remove systems whose solution set is contained in another's.

    Quadratic in the list length but each check is a closed-matrix
    comparison; this is the "keep the strongest" reduction that bounds
    the expansion polynomially for a fixed schema.
    """
    kept: list[DBM] = []
    for candidate in systems:
        if any(candidate.implies(other) for other in kept):
            continue
        kept = [other for other in kept if not other.implies(candidate)]
        kept.append(candidate)
    return kept


def complement_normalized(
    normalized: Iterable[NormalizedTuple],
    arity: int,
    period: int,
    data: tuple = (),
    max_extensions: int = DEFAULT_MAX_EXTENSIONS,
) -> list[NormalizedTuple]:
    """Complement a set of same-data normalized tuples w.r.t. ``Z^arity``.

    ``normalized`` must all have the given period and data values.
    Raises :class:`NormalizationLimitError` when ``period ** arity``
    exceeds ``max_extensions`` (the inherent general-complexity blow-up).
    """
    if period ** arity > max_extensions:
        raise NormalizationLimitError(
            f"complement would enumerate {period ** arity} free extensions "
            f"(limit {max_extensions})"
        )
    PERF_COUNTERS["complement_extensions"] += period ** arity
    groups: dict[tuple[int, ...], list[DBM]] = {}
    for nt in normalized:
        flat = desingularize(nt)
        groups.setdefault(flat.offsets, []).append(flat.n_dbm)
    out: list[NormalizedTuple] = []
    all_false = tuple(False for _ in range(arity))
    for offsets in itertools.product(range(period), repeat=arity):
        systems = groups.get(offsets)
        if systems is None:
            dbms: list[DBM] = [DBM(arity)]
        else:
            dbms = complement_constraint_systems(systems, arity)
        for dbm in dbms:
            out.append(
                NormalizedTuple(
                    period=period,
                    offsets=offsets,
                    singleton=all_false,
                    n_dbm=dbm,
                    data=data,
                )
            )
    return out


def complement_tuples(
    tuples: Sequence[GeneralizedTuple],
    arity: int,
    data: tuple = (),
    max_tuples: int = DEFAULT_MAX_TUPLES,
    max_extensions: int = DEFAULT_MAX_EXTENSIONS,
    uniform_period: bool = False,
) -> list[GeneralizedTuple]:
    """Complement same-data generalized tuples w.r.t. ``Z^arity``.

    Handles the empty input (complement is all of ``Z^arity``) and the
    0-ary edge case (the complement of a nonempty 0-ary relation is
    empty; of an empty one, the single empty tuple).

    By default the free-extension enumeration uses *per-component*
    periods: columns that are never constrained against each other (in
    any tuple) keep independent periods, so the enumeration costs
    ``Π k_comp^|comp|`` instead of the paper's uniform ``k^m``.  Pass
    ``uniform_period=True`` for the paper's literal algorithm (same
    semantics, coarser splitting).
    """
    if arity == 0:
        nonempty = any(t.dbm.copy().close() for t in tuples)
        if nonempty:
            return []
        return [GeneralizedTuple.make([], data=data)]
    if uniform_period:
        period, normalized = normalize_relation_tuples(
            tuples, max_tuples=max_tuples
        )
        result = complement_normalized(
            normalized,
            arity=arity,
            period=period,
            data=data,
            max_extensions=max_extensions,
        )
        return [nt.to_generalized() for nt in result]
    return _complement_tuples_decomposed(
        tuples,
        arity=arity,
        data=data,
        max_tuples=max_tuples,
        max_extensions=max_extensions,
    )


# ----------------------------------------------------------------------
# per-component-period complement (a refinement of Appendix A.6)
# ----------------------------------------------------------------------


def _column_components(
    tuples: Sequence[GeneralizedTuple], arity: int
) -> list[int]:
    """Union-find over columns: co-constrained columns share a component.

    Returns a representative id per column.  Two columns are merged when
    *any* tuple holds a difference constraint between them; unary bounds
    do not connect columns.
    """
    parent = list(range(arity))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for gtuple in tuples:
        for i, j, _bound in gtuple.dbm.iter_bounds():
            if i >= 0 and j >= 0:
                union(i, j)
    return [find(i) for i in range(arity)]


def _column_periods(
    tuples: Sequence[GeneralizedTuple],
    components: list[int],
    arity: int,
) -> list[int]:
    """Per-column period: lcm of lrp periods across each component."""
    from repro.arith import lcm

    by_component: dict[int, int] = {}
    for gtuple in tuples:
        for col in range(arity):
            period = gtuple.lrps[col].period
            if period != 0:
                root = components[col]
                by_component[root] = lcm(by_component.get(root, 1), period)
    return [by_component.get(components[col], 1) for col in range(arity)]


def _normalize_mixed(
    gtuple: GeneralizedTuple,
    k_cols: list[int],
    max_tuples: int,
) -> Iterable[tuple[tuple[int, ...], DBM]]:
    """Normalize one tuple onto per-column periods, desingularized.

    Yields ``(offsets, n_dbm)`` pairs: every column becomes a periodic
    lrp ``offset + k_col * n`` (original singletons pin their counter),
    and the constraints are transcribed onto the counters with the
    integer-exact floor of Theorem 3.2's step 5 (valid because any two
    co-constrained columns share their component's period).
    """
    import itertools

    if not gtuple.dbm.copy().close():
        return
    arity = gtuple.temporal_arity
    size = 1
    for col in range(arity):
        if gtuple.lrps[col].period != 0:
            size *= k_cols[col] // gtuple.lrps[col].period
    if size > max_tuples:
        raise NormalizationLimitError(
            f"decomposed normalization would produce {size} tuples "
            f"(limit {max_tuples})"
        )
    choices: list[list[tuple[int, int | None]]] = []
    for col in range(arity):
        lrp = gtuple.lrps[col]
        k = k_cols[col]
        if lrp.period == 0:
            # Singleton: offset reduced mod k, counter pinned.
            pin = (lrp.offset - lrp.offset % k) // k
            choices.append([(lrp.offset % k, pin)])
        else:
            choices.append(
                [(piece.offset, None) for piece in lrp.split(k)]
            )
    x_bounds = list(gtuple.dbm.iter_bounds())
    for combo in itertools.product(*choices):
        offsets = tuple(offset for offset, _pin in combo)
        n_dbm = DBM(arity)
        for col, (_offset, pin) in enumerate(combo):
            if pin is not None:
                n_dbm.add_value(col, pin)
        for i, j, bound in x_bounds:
            # Original X-space values: X = offset + k*n for both the
            # reduced singleton and the split periodic forms.
            ci = offsets[i] if i >= 0 else 0
            cj = offsets[j] if j >= 0 else 0
            k = k_cols[i] if i >= 0 else k_cols[j]
            n_bound = (bound - ci + cj) // k
            if i >= 0 and j >= 0:
                n_dbm.add_difference(i, j, n_bound)
            elif j < 0:
                n_dbm.add_upper(i, n_bound)
            else:
                n_dbm.add_lower(j, -n_bound)
        if n_dbm.copy().close():
            yield offsets, n_dbm


def _complement_tuples_decomposed(
    tuples: Sequence[GeneralizedTuple],
    arity: int,
    data: tuple,
    max_tuples: int,
    max_extensions: int,
) -> list[GeneralizedTuple]:
    components = _column_components(tuples, arity)
    k_cols = _column_periods(tuples, components, arity)
    total = 1
    for k in k_cols:
        total *= k
        if total > max_extensions:
            raise NormalizationLimitError(
                f"complement would enumerate more than {max_extensions} "
                "free extensions"
            )
    # Structural accounting (Theorem 3.6's blow-up parameter): number of
    # free-extension combinations this complement enumerates.
    PERF_COUNTERS["complement_extensions"] += total
    groups: dict[tuple[int, ...], list[DBM]] = {}
    budget = 0
    for gtuple in tuples:
        for offsets, n_dbm in _normalize_mixed(gtuple, k_cols, max_tuples):
            budget += 1
            if budget > max_tuples:
                raise NormalizationLimitError(
                    f"decomposed complement exceeded {max_tuples} "
                    "normalized tuples"
                )
            groups.setdefault(offsets, []).append(n_dbm)
    out: list[GeneralizedTuple] = []
    for offsets in itertools.product(*(range(k) for k in k_cols)):
        systems = groups.get(offsets)
        if systems is None:
            dbms: list[DBM] = [DBM(arity)]
        else:
            dbms = complement_constraint_systems(systems, arity)
        for n_dbm in dbms:
            out.append(
                _mixed_to_generalized(offsets, k_cols, n_dbm, data)
            )
    return out


def _mixed_to_generalized(
    offsets: tuple[int, ...],
    k_cols: list[int],
    n_dbm: DBM,
    data: tuple,
) -> GeneralizedTuple:
    """Convert a per-column-period n-space tuple back to X-space."""
    from repro.core.lrp import LRP

    lrps = tuple(
        LRP.make(offset, k) for offset, k in zip(offsets, k_cols)
    )
    x_dbm = DBM(len(offsets))
    for i, j, bound in n_dbm.iter_bounds():
        if i >= 0 and j >= 0 and k_cols[i] != k_cols[j]:
            # A difference bound between counters of different scales
            # can only arise from closure through the zero variable, so
            # it is implied by the unary bounds we do keep — and it has
            # no X-space difference-constraint translation.  Skip it.
            continue
        ci = offsets[i] if i >= 0 else 0
        cj = offsets[j] if j >= 0 else 0
        k = k_cols[i] if i >= 0 else k_cols[j]
        x_bound = k * bound + ci - cj
        if i >= 0 and j >= 0:
            x_dbm.add_difference(i, j, x_bound)
        elif j < 0:
            x_dbm.add_upper(i, x_bound)
        else:
            x_dbm.add_lower(j, -x_bound)
    return GeneralizedTuple(lrps=lrps, dbm=x_dbm, data=data)
