"""Linear repeating points (Definition 2.1 of the paper).

An lrp is the set ``{c + k*n | n ∈ Z}``: a single integer when ``k == 0``
or an infinite bidirectional arithmetic progression otherwise.  Because
``n`` ranges over *all* integers, the set is invariant under replacing
``k`` by ``|k|`` and ``c`` by ``c mod |k|``; :class:`LRP` stores this
canonical form so that structural equality coincides with set equality.
"""

from __future__ import annotations

import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.arith import crt_pair, lcm
from repro.core.errors import ParseError, ReproValueError

_LRP_RE = re.compile(
    r"""^\s*
    (?:(?P<c1>[+-]?\d+)\b(?!\s*\*?\s*n)\s*)?    # leading constant (not a coefficient)
    (?:(?P<sign>[+-])?\s*(?P<k>\d+)?\s*\*?\s*n(?P<sub>[0-9']*)\s*)?  # optional k*n
    (?:(?P<c2sign>[+-])\s*(?P<c2>\d+)\s*)?      # optional trailing constant
    $""",
    re.VERBOSE,
)


@dataclass(frozen=True, order=True)
class LRP:
    """A linear repeating point in canonical form.

    Attributes:
        offset: the residue ``c``; satisfies ``0 <= offset < period`` when
            ``period > 0``.
        period: the step ``k``; always ``>= 0``, with 0 meaning the lrp is
            the singleton ``{offset}``.
    """

    offset: int
    period: int

    def __post_init__(self) -> None:
        if self.period < 0:
            raise ReproValueError("canonical LRP must have period >= 0")
        if self.period > 0 and not 0 <= self.offset < self.period:
            raise ReproValueError(
                f"canonical LRP must have 0 <= offset < period, "
                f"got offset={self.offset}, period={self.period}"
            )

    @classmethod
    def make(cls, offset: int, period: int = 0) -> LRP:
        """Build an lrp from any ``c + k*n`` expression, canonicalizing it."""
        period = abs(period)
        if period > 0:
            offset %= period
        return cls(offset=offset, period=period)

    @classmethod
    def point(cls, value: int) -> LRP:
        """Build the singleton lrp ``{value}``."""
        return cls(offset=value, period=0)

    @classmethod
    def parse(cls, text: str) -> LRP:
        """Parse expressions like ``"3 + 5n"``, ``"5n + 3"``, ``"7"``, ``"n"``.

        Variable subscripts (``n1``, ``n2``, ``n'``) are accepted and
        ignored: the paper assumes each lrp has its own variable, which
        canonical set semantics makes irrelevant.
        """
        m = _LRP_RE.match(text)
        if m is None or (m.group("c1") is None and m.group("k") is None
                         and "n" not in text):
            raise ParseError(f"cannot parse lrp expression: {text!r}")
        has_n = "n" in text
        constant = 0
        if m.group("c1") is not None:
            constant += int(m.group("c1"))
        if m.group("c2") is not None:
            sign = -1 if m.group("c2sign") == "-" else 1
            constant += sign * int(m.group("c2"))
        period = 0
        if has_n:
            k = int(m.group("k")) if m.group("k") else 1
            if m.group("sign") == "-":
                k = -k
            period = k
        return cls.make(constant, period)

    @property
    def is_singleton(self) -> bool:
        """Whether the lrp denotes a single point."""
        return self.period == 0

    def contains(self, x: int) -> bool:
        """Return whether the integer ``x`` belongs to this lrp."""
        if self.period == 0:
            return x == self.offset
        return x % self.period == self.offset

    def intersect(self, other: LRP) -> LRP | None:
        """Intersect two lrps (Section 3.2.1), via the CRT.

        Returns the intersection lrp, or ``None`` when it is empty.  For
        two periodic lrps the result has period ``lcm(k1, k2)``, exactly
        as the paper derives.
        """
        sol = crt_pair(self.offset, self.period, other.offset, other.period)
        if sol is None:
            return None
        return LRP.make(sol.residue, sol.modulus)

    def includes(self, other: LRP) -> bool:
        """Return whether ``other``'s point set is a subset of this one's."""
        meet = self.intersect(other)
        return meet == other

    def split(self, new_period: int) -> list[LRP]:
        """Rewrite this lrp as a set of lrps of period ``new_period``.

        This is Lemma 3.1: an lrp of period ``k`` equals the union of
        ``new_period // k`` lrps of period ``new_period``, provided ``k``
        divides ``new_period``.  A singleton lrp is returned unchanged
        (the paper's normal form keeps constant attributes as constants).
        """
        if self.period == 0:
            return [self]
        if new_period <= 0 or new_period % self.period != 0:
            raise ReproValueError(
                f"cannot split period {self.period} into period {new_period}"
            )
        count = new_period // self.period
        return [
            LRP.make(self.offset + j * self.period, new_period)
            for j in range(count)
        ]

    def subtract(self, other: LRP) -> list[LRP]:
        """Set difference of two lrps (Section 3.3.1), as a list of lrps.

        ``A - B`` equals ``A - (A ∩ B)``; after replacing ``B`` by the
        intersection, ``A`` is split onto the intersection's period and
        the residue class belonging to the intersection is dropped.
        """
        meet = self.intersect(other)
        if meet is None:
            return [self]
        if meet == self:
            return []
        if self.period == 0:
            # Singleton intersecting a set that is not all of it: since
            # meet is a subset of {offset}, meet == self; unreachable.
            raise AssertionError("singleton lrp intersection must be itself")
        pieces = self.split(meet.period) if meet.period > 0 else None
        if pieces is None:
            # meet is a single point inside an infinite progression: the
            # difference is not an lrp-finite union of the same period...
            # but it *is* expressible: {c + kn} - {p} has no finite lrp
            # cover.  The paper only subtracts lrps arising from
            # intersections of equal-period progressions, where this case
            # cannot occur (lcm of positive periods is positive).  It can
            # only occur here if other is a singleton; handle by keeping
            # the progression split around the point via period doubling
            # being impossible -- so raise instead.
            raise ReproValueError(
                "difference of an infinite lrp and a single point is not "
                "a finite union of lrps; subtract within a common period"
            )
        return [piece for piece in pieces if piece != meet]

    def enumerate(self, low: int, high: int) -> Iterator[int]:
        """Yield the members of the lrp within ``[low, high]``, ascending."""
        if self.period == 0:
            if low <= self.offset <= high:
                yield self.offset
            return
        # Smallest member >= low.
        first = low + ((self.offset - low) % self.period)
        for x in range(first, high + 1, self.period):
            yield x

    def first_at_or_above(self, low: int) -> int:
        """Return the smallest member of the lrp that is ``>= low``.

        For a singleton below ``low`` there is no such member and
        :class:`ValueError` is raised.
        """
        if self.period == 0:
            if self.offset >= low:
                return self.offset
            raise ReproValueError(f"lrp {self} has no member >= {low}")
        return low + ((self.offset - low) % self.period)

    def last_at_or_below(self, high: int) -> int:
        """Return the largest member of the lrp that is ``<= high``."""
        if self.period == 0:
            if self.offset <= high:
                return self.offset
            raise ReproValueError(f"lrp {self} has no member <= {high}")
        return high - ((high - self.offset) % self.period)

    def __str__(self) -> str:
        if self.period == 0:
            return str(self.offset)
        if self.offset == 0:
            return f"{self.period}n"
        return f"{self.offset} + {self.period}n"

    def __repr__(self) -> str:
        return f"LRP({self.offset}, {self.period})"


def common_period(lrps: list[LRP]) -> int:
    """Return the lcm of the non-zero periods among ``lrps`` (1 if none)."""
    k = 1
    for lrp in lrps:
        if lrp.period != 0:
            k = lcm(k, lrp.period)
    return k
