"""Normal form and normalization (Definition 3.2, Theorem 3.2, Figure 3).

A tuple is *in normal form* when all its periodic lrps share one period
``k`` and every constraint constant is compatible with the ``k``-grid.
Normalization is the paper's five-step algorithm:

1. split every periodic lrp onto the common period ``k`` (Lemma 3.1);
2. take the cross product of the splits, copying the constraints;
3. rewrite the constraints over the repetition counters;
4. discard tuples whose equality constraints cannot meet the grid;
5. shift inequality constants down onto the grid (integer flooring).

The payoff is Theorem 3.1: over the repetition counters ``n_i`` (which
range over all of Z), the constraints form a plain integer difference
system, where the real-variable projection algorithm (shortest-path
closure) is integer-exact.  All projection, emptiness and complement
computations therefore run in this normalized *n-space*.

Implementation notes:

* Singleton lrps (period 0) are kept as constants; their repetition
  counter is pinned to 0 via equality constraints, so the n-space system
  remains a pure difference system (Theorem 3.1 still applies).
* Steps 3–5 are fused: every X-space bound ``X_i - X_j <= b`` maps to the
  n-space bound ``n_i - n_j <= floor((b - c_i + c_j) / k)``, which is
  exact because ``n_i - n_j`` is an integer.  Equality constraints map to
  two such bounds; step 4's divisibility filter falls out as an
  unsatisfiable n-space system (the two floored bounds cross).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.arith import lcm
from repro.core.dbm import DBM
from repro.core.errors import NormalizationLimitError, ReproValueError
from repro.core.lrp import LRP
from repro.core.tuples import GeneralizedTuple
from repro.perf import kernel
from repro.perf.cache import normalize_cache
from repro.perf.config import PERF_COUNTERS

DEFAULT_MAX_TUPLES = 1_000_000


@dataclass
class NormalizedTuple:
    """A generalized tuple in normal form, carried in n-space.

    Attributes:
        period: the common period ``k`` (>= 1).
        offsets: per temporal attribute, the lrp offset ``c_i`` (for a
            periodic attribute, reduced into ``[0, k)``) or the constant
            value (for a singleton attribute).
        singleton: per temporal attribute, whether the lrp is a constant.
        n_dbm: difference constraints over the repetition counters
            ``n_i = (X_i - c_i) / k``; counters of singleton attributes
            are pinned to 0.
        data: data-attribute values.
    """

    period: int
    offsets: tuple[int, ...]
    singleton: tuple[bool, ...]
    n_dbm: DBM
    data: tuple[Hashable, ...] = ()

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ReproValueError("normalized period must be >= 1")
        if len(self.offsets) != len(self.singleton):
            raise ReproValueError("offsets/singleton length mismatch")
        if self.n_dbm.size != len(self.offsets):
            raise ReproValueError("n_dbm size does not match arity")

    @property
    def arity(self) -> int:
        """Number of temporal attributes."""
        return len(self.offsets)

    def free_extension_key(self) -> tuple:
        """Identity of the free extension: offsets + singleton flags + data.

        Two normalized tuples of the same period with equal keys have the
        same free extension, the grouping complement and subtraction use.
        """
        return (self.period, self.offsets, self.singleton, self.data)

    def lrps(self) -> tuple[LRP, ...]:
        """The lrp vector this normalized tuple denotes."""
        return tuple(
            LRP.point(c) if s else LRP.make(c, self.period)
            for c, s in zip(self.offsets, self.singleton)
        )

    def is_empty(self) -> bool:
        """Whether the denoted point set is empty (integer-exact)."""
        return not self.n_dbm.copy().close()

    def to_generalized(self) -> GeneralizedTuple:
        """Convert back to an X-space generalized tuple.

        n-space bounds ``n_i - n_j <= b`` map to X-space bounds
        ``X_i - X_j <= k*b + c_i - c_j``.  Pins of singleton counters are
        dropped: the singleton lrp already encodes them.
        """
        k = self.period
        arity = self.arity
        x_dbm = DBM(arity)
        for i, j, bound in self.n_dbm.iter_bounds():
            # Skip pure pin constraints on singleton counters: they are
            # represented by the singleton lrp itself.
            if i >= 0 and j < 0 and self.singleton[i]:
                continue
            if j >= 0 and i < 0 and self.singleton[j]:
                continue
            ci = self.offsets[i] if i >= 0 else 0
            cj = self.offsets[j] if j >= 0 else 0
            x_bound = k * bound + ci - cj
            if i >= 0 and j >= 0:
                x_dbm.add_difference(i, j, x_bound)
            elif j < 0:
                x_dbm.add_upper(i, x_bound)
            else:
                x_dbm.add_lower(j, -x_bound)
        return GeneralizedTuple(lrps=self.lrps(), dbm=x_dbm, data=self.data)

    def project(self, keep: Sequence[int]) -> NormalizedTuple:
        """Project onto the temporal attributes at positions ``keep``.

        Exact over Z by Theorem 3.1: the n-space system is a difference
        system over free integer counters.
        """
        return NormalizedTuple(
            period=self.period,
            offsets=tuple(self.offsets[i] for i in keep),
            singleton=tuple(self.singleton[i] for i in keep),
            n_dbm=self.n_dbm.project(list(keep)),
            data=self.data,
        )

    def intersect(self, other: NormalizedTuple) -> NormalizedTuple | None:
        """Intersect two normalized tuples of the same period.

        Two equal-period lrps intersect iff their offsets agree modulo
        the period (the paper's Appendix A.3 observation); the result
        keeps the shared free extension and conjoins the n-space
        constraints.
        """
        if self.period != other.period:
            raise ReproValueError("normalized periods differ; re-normalize first")
        if self.arity != other.arity or self.data != other.data:
            return None
        k = self.period
        offsets: list[int] = []
        singleton: list[bool] = []
        # The n-counters of both sides measure from possibly different
        # constants when mixing singleton and periodic attributes, so
        # align the counter origin attribute by attribute.
        self_shift: list[int] = []
        other_shift: list[int] = []
        for (c1, s1), (c2, s2) in zip(
            zip(self.offsets, self.singleton), zip(other.offsets, other.singleton)
        ):
            if s1 and s2:
                if c1 != c2:
                    return None
                offsets.append(c1)
                singleton.append(True)
                self_shift.append(0)
                other_shift.append(0)
            elif s1:
                # {c1} ∩ (c2 + kZ): nonempty iff c1 ≡ c2 (mod k).
                if (c1 - c2) % k != 0:
                    return None
                offsets.append(c1)
                singleton.append(True)
                self_shift.append(0)
                other_shift.append((c1 - c2) // k)
            elif s2:
                if (c2 - c1) % k != 0:
                    return None
                offsets.append(c2)
                singleton.append(True)
                self_shift.append((c2 - c1) // k)
                other_shift.append(0)
            else:
                if c1 % k != c2 % k:
                    return None
                offsets.append(c1)
                singleton.append(False)
                self_shift.append(0)
                other_shift.append(0)
        left = _shift_counters(self.n_dbm, self_shift)
        right = _shift_counters(other.n_dbm, other_shift)
        merged = left.intersect(right)
        # Singletons arising from singleton-vs-periodic pairs must pin the
        # counter so both sides' bounds refer to the same point.
        for idx, s in enumerate(singleton):
            if s:
                merged.add_value(idx, 0)
        return NormalizedTuple(
            period=k,
            offsets=tuple(offsets),
            singleton=tuple(singleton),
            n_dbm=merged,
            data=self.data,
        )


def _shift_counters(dbm: DBM, shifts: Sequence[int]) -> DBM:
    """Substitute ``n_i := n_i + shift_i`` for every counter at once.

    Used to re-origin repetition counters when the reference constant of
    an attribute changes (e.g. aligning a periodic attribute's counter to
    a singleton value during intersection).  If the new counter is
    ``n'_i = n_i - shift_i`` (so the same point keeps its identity while
    the origin moves by ``k*shift_i``), a bound ``n_i - n_j <= b`` becomes
    ``n'_i - n'_j <= b - shift_i + shift_j``.
    """
    if all(s == 0 for s in shifts):
        return dbm.copy()
    out = dbm.copy()
    for i, s in enumerate(shifts):
        if s != 0:
            out = out.shift_variable(i, -s)
    return out


def tuple_explosion_size(gtuple: GeneralizedTuple, period: int) -> int:
    """Number of normal-form tuples ``gtuple`` splits into for ``period``."""
    size = 1
    for lrp in gtuple.lrps:
        if lrp.period != 0:
            size *= period // lrp.period
    return size


def tuple_period(gtuple: GeneralizedTuple) -> int:
    """The lcm of the tuple's non-zero lrp periods (1 if none)."""
    k = 1
    for lrp in gtuple.lrps:
        if lrp.period != 0:
            k = lcm(k, lrp.period)
    return k


def relation_period(tuples: Iterable[GeneralizedTuple]) -> int:
    """The lcm of all non-zero lrp periods across ``tuples`` (1 if none)."""
    k = 1
    for gtuple in tuples:
        for lrp in gtuple.lrps:
            if lrp.period != 0:
                k = lcm(k, lrp.period)
    return k


def iter_normalize_tuple(
    gtuple: GeneralizedTuple,
    period: int | None = None,
    max_tuples: int = DEFAULT_MAX_TUPLES,
    keep_empty: bool = False,
) -> Iterator[NormalizedTuple]:
    """Lazily normalize one generalized tuple (Theorem 3.2's five steps).

    ``period`` must be a positive common multiple of the tuple's lrp
    periods; by default the tuple's own lcm is used.  Tuples whose
    constraints become unsatisfiable on the grid (step 4) are dropped
    unless ``keep_empty`` is set.

    Raises :class:`NormalizationLimitError` when the split would produce
    more than ``max_tuples`` normal-form tuples (Section 3.8's blow-up).
    Laziness lets decision procedures (e.g. emptiness) stop at the first
    witness instead of materializing the whole split.
    """
    own = tuple_period(gtuple)
    if period is None:
        period = own
    if period < 1 or period % own != 0:
        raise ReproValueError(
            f"period {period} is not a positive multiple of the tuple's "
            f"lcm period {own}"
        )
    size = tuple_explosion_size(gtuple, period)
    if size > max_tuples:
        raise NormalizationLimitError(
            f"normalization would produce {size} tuples "
            f"(limit {max_tuples}); periods are too unrelated"
        )
    # Structural accounting (Section 3.8's blow-up parameter): how many
    # normal-form tuples this expansion denotes, cache hit or not.
    PERF_COUNTERS["normalize_expansion"] += size
    # An unsatisfiable constraint system denotes the empty set; it may be
    # recorded as a diagonal marker that iter_bounds cannot expose, so it
    # must be checked before the bounds are transcribed.
    if not gtuple.dbm.copy().close():
        return
    arity = gtuple.temporal_arity
    x_bounds = list(gtuple.dbm.iter_bounds())
    # The memo key is the written tuple form.  Limit validation happened
    # above, so a hit cannot mask a NormalizationLimitError; values are
    # handed out as fresh copies because callers close and project the
    # n_dbm in place, which must not leak back into the cache.
    cache = normalize_cache()
    key = None
    if cache is not None:
        key = (
            "normalize",
            period,
            keep_empty,
            gtuple.lrps,
            tuple(x_bounds),
            gtuple.data,
        )
        hit = cache.get(key)
        if hit is not None:
            PERF_COUNTERS["normalize_cache_hit"] += 1
            for cached in hit:
                yield NormalizedTuple(
                    period=cached.period,
                    offsets=cached.offsets,
                    singleton=cached.singleton,
                    n_dbm=cached.n_dbm.copy(),
                    data=cached.data,
                )
            return
        PERF_COUNTERS["normalize_cache_miss"] += 1
    produced: list[NormalizedTuple] = []
    # Step 1: split every periodic lrp onto the common period.
    choices: list[list[LRP]] = [
        lrp.split(period) if lrp.period != 0 else [lrp]
        for lrp in gtuple.lrps
    ]
    # Step 2: cross product of the splits (steps 3-5 fused per combo in
    # :func:`_build_normalized`).
    if kernel.kernel_active() and size > 1 and not keep_empty:
        # Collect-then-close: build every combo's counter system first,
        # then resolve all emptiness checks (step 4) with one batched
        # closure sweep instead of a scalar closure per combo.  Trades
        # the generator's laziness for vectorization; yielded values and
        # the memoized expansion are identical to the scalar path's.
        builds = [
            _build_normalized(combo, period, arity, x_bounds, gtuple.data)
            for combo in _product(choices)
        ]
        verdicts = kernel.sat_batch(
            [normalized.n_dbm for normalized in builds]
        )
        for normalized, sat in zip(builds, verdicts):
            if not sat:
                continue
            if key is not None:
                produced.append(
                    NormalizedTuple(
                        period=period,
                        offsets=normalized.offsets,
                        singleton=normalized.singleton,
                        n_dbm=normalized.n_dbm.copy(),
                        data=gtuple.data,
                    )
                )
            yield normalized
        if key is not None:
            cache.put(key, produced)
        return
    for combo in _product(choices):
        normalized = _build_normalized(
            combo, period, arity, x_bounds, gtuple.data
        )
        if keep_empty or not normalized.is_empty():
            if key is not None:
                produced.append(
                    NormalizedTuple(
                        period=period,
                        offsets=normalized.offsets,
                        singleton=normalized.singleton,
                        n_dbm=normalized.n_dbm.copy(),
                        data=gtuple.data,
                    )
                )
            yield normalized
    # Only a fully-consumed expansion is memoized: an early-exiting
    # consumer (emptiness stops at its first witness) leaves the loop
    # before this line runs.
    if key is not None:
        cache.put(key, produced)


def normalize_tuple(
    gtuple: GeneralizedTuple,
    period: int | None = None,
    max_tuples: int = DEFAULT_MAX_TUPLES,
    keep_empty: bool = False,
) -> list[NormalizedTuple]:
    """Materialized form of :func:`iter_normalize_tuple`."""
    return list(
        iter_normalize_tuple(
            gtuple, period=period, max_tuples=max_tuples, keep_empty=keep_empty
        )
    )


def _build_normalized(
    combo: tuple[LRP, ...],
    period: int,
    arity: int,
    x_bounds: list[tuple[int, int, int]],
    data: tuple[Hashable, ...],
) -> NormalizedTuple:
    """Steps 3-5 fused: map every X-space bound onto the counters."""
    offsets = tuple(lrp.offset for lrp in combo)
    singleton = tuple(lrp.period == 0 for lrp in combo)
    n_dbm = DBM(arity)
    for idx, is_single in enumerate(singleton):
        if is_single:
            n_dbm.add_value(idx, 0)
    for i, j, bound in x_bounds:
        ci = offsets[i] if i >= 0 else 0
        cj = offsets[j] if j >= 0 else 0
        n_bound = _floor_div_exactish(bound - ci + cj, period)
        if i >= 0 and j >= 0:
            n_dbm.add_difference(i, j, n_bound)
        elif j < 0:
            n_dbm.add_upper(i, n_bound)
        else:
            n_dbm.add_lower(j, -n_bound)
    return NormalizedTuple(
        period=period,
        offsets=offsets,
        singleton=singleton,
        n_dbm=n_dbm,
        data=data,
    )


def _floor_div_exactish(value: int, period: int) -> int:
    """Floor-divide a bound constant onto the grid (step 5)."""
    return value // period


def _product(choices: list[list[LRP]]) -> Iterator[tuple[LRP, ...]]:
    """Cross product of per-attribute lrp choices."""
    if not choices:
        yield ()
        return
    yield from itertools.product(*choices)


def normalize_relation_tuples(
    tuples: Iterable[GeneralizedTuple],
    period: int | None = None,
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> tuple[int, list[NormalizedTuple]]:
    """Normalize a collection of tuples onto one common period.

    Returns ``(period, normalized_tuples)``.  The common period is the
    lcm over all tuples unless explicitly supplied.
    """
    tuple_list = list(tuples)
    if period is None:
        period = relation_period(tuple_list)
    total = 0
    out: list[NormalizedTuple] = []
    for gtuple in tuple_list:
        size = tuple_explosion_size(gtuple, period)
        total += size
        if total > max_tuples:
            raise NormalizationLimitError(
                f"relation normalization would exceed {max_tuples} tuples"
            )
        out.extend(normalize_tuple(gtuple, period=period, max_tuples=max_tuples))
    return period, out
