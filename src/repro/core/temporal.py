"""Exact temporal utilities over generalized relations.

Once infinite extensions are stored symbolically, questions like "when
is the *next* event after t?" or "is this set finite, and how big?"
have exact, closed-form answers — no enumeration, no horizon.  These
helpers operate on one temporal column at a time, going through
projection (integer-exact, Theorem 3.1) and the normalized unary form:
an lrp ``c + k·n`` boxed by optional bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith import lcm
from repro.core import algebra
from repro.core.errors import SchemaError
from repro.core.normalize import iter_normalize_tuple
from repro.core.relations import GeneralizedRelation


@dataclass(frozen=True)
class ColumnProfile:
    """Summary of one temporal column's value set.

    Attributes:
        lower: tightest lower bound, or ``None`` if unbounded below.
        upper: tightest upper bound, or ``None`` if unbounded above.
        finite: whether the value set is finite.
        count: exact cardinality when finite, else ``None``.
        period: lcm of the periods of the contributing lrps (1 when all
            contributions are single points).
    """

    lower: int | None
    upper: int | None
    finite: bool
    count: int | None
    period: int


def _unary_pieces(relation: GeneralizedRelation, column: str):
    """Normalize the projection onto ``column`` into (offset, k, lo, hi).

    ``lo``/``hi`` are inclusive bounds on the column value (``None`` =
    unbounded); empty pieces are dropped.
    """
    if not relation.schema.has(column):
        raise SchemaError(f"no attribute named {column!r}")
    if not relation.schema.attribute(column).temporal:
        raise SchemaError(f"attribute {column!r} is not temporal")
    projected = algebra.project(relation, [column])
    pieces: list[tuple[int, int, int | None, int | None]] = []
    for gtuple in projected:
        for nt in iter_normalize_tuple(gtuple):
            k = nt.period
            c = nt.offsets[0]
            if nt.singleton[0]:
                pieces.append((c, 0, c, c))
                continue
            n_lo = nt.n_dbm.lower(0)
            n_hi = nt.n_dbm.upper(0)
            lo = None if n_lo is None else c + k * n_lo
            hi = None if n_hi is None else c + k * n_hi
            pieces.append((c, k, lo, hi))
    return pieces


def column_profile(
    relation: GeneralizedRelation, column: str
) -> ColumnProfile:
    """Exact summary of the named temporal column's value set."""
    pieces = _unary_pieces(relation, column)
    if not pieces:
        return ColumnProfile(
            lower=None, upper=None, finite=True, count=0, period=1
        )
    lower: int | None = None
    upper: int | None = None
    unbounded_below = unbounded_above = False
    period = 1
    for c, k, lo, hi in pieces:
        if k:
            period = lcm(period, k)
        if lo is None:
            unbounded_below = True
        elif lower is None or lo < lower:
            lower = lo
        if hi is None:
            unbounded_above = True
        elif upper is None or hi > upper:
            upper = hi
    finite = not (unbounded_below or unbounded_above)
    count: int | None = None
    if finite:
        values: set[int] = set()
        for c, k, lo, hi in pieces:
            if k == 0:
                values.add(c)
            else:
                assert lo is not None and hi is not None
                values.update(range(lo, hi + 1, k))
        count = len(values)
    return ColumnProfile(
        lower=None if unbounded_below else lower,
        upper=None if unbounded_above else upper,
        finite=finite,
        count=count,
        period=period,
    )


def next_event(
    relation: GeneralizedRelation, column: str, after: int
) -> int | None:
    """Smallest value of ``column`` that is ``>= after`` (exact).

    Returns ``None`` when no point of the column lies at or above
    ``after``.  O(tuples) — no enumeration of the (possibly infinite)
    extension.
    """
    best: int | None = None
    for c, k, lo, hi in _unary_pieces(relation, column):
        start = after if lo is None else max(after, lo)
        if k == 0:
            candidate = c if c >= start else None
        else:
            candidate = start + ((c - start) % k)
        if candidate is None:
            continue
        if hi is not None and candidate > hi:
            continue
        if best is None or candidate < best:
            best = candidate
    return best


def prev_event(
    relation: GeneralizedRelation, column: str, before: int
) -> int | None:
    """Largest value of ``column`` that is ``<= before`` (exact)."""
    best: int | None = None
    for c, k, lo, hi in _unary_pieces(relation, column):
        end = before if hi is None else min(before, hi)
        if k == 0:
            candidate = c if c <= end else None
        else:
            candidate = end - ((end - c) % k)
        if candidate is None:
            continue
        if lo is not None and candidate < lo:
            continue
        if best is None or candidate > best:
            best = candidate
    return best


def min_value(relation: GeneralizedRelation, column: str) -> int | None:
    """Tightest lower bound of the column, or ``None`` if unbounded/empty.

    Distinguish the two ``None`` cases with :func:`column_profile`.
    """
    return column_profile(relation, column).lower


def max_value(relation: GeneralizedRelation, column: str) -> int | None:
    """Tightest upper bound of the column, or ``None`` if unbounded/empty."""
    return column_profile(relation, column).upper


def is_finite(relation: GeneralizedRelation) -> bool:
    """Whether the relation denotes finitely many points.

    True iff every temporal column's value set is finite (data columns
    are always finite — one value per tuple).
    """
    return all(
        column_profile(relation, name).finite
        for name in relation.schema.temporal_names
    )


def count_points(relation: GeneralizedRelation) -> int | None:
    """Exact number of denoted points, or ``None`` when infinite.

    Counts by enumeration over the (finite) bounding box, so it is meant
    for genuinely finite relations; infinite ones return ``None``
    immediately.
    """
    if len(relation) == 0:
        return 0
    if not is_finite(relation):
        return None
    lows = []
    highs = []
    for name in relation.schema.temporal_names:
        profile = column_profile(relation, name)
        if profile.count == 0:
            return 0
        lows.append(profile.lower)
        highs.append(profile.upper)
    if not lows:
        return sum(1 for _ in relation.enumerate(0, 0))
    return sum(1 for _ in relation.enumerate(min(lows), max(highs)))
