"""Semi-naive evaluation and incremental view maintenance.

The naive fixpoint of :meth:`repro.deductive.program.Program.evaluate`
re-evaluates every rule body against the *whole* IDB on every
iteration.  Because generalized relations are finitely represented and
the algebra is closed, the classic Datalog differentiation transfers
directly to the paper's setting: a fact derived for the first time in
round ``r`` must use at least one generalized tuple first derived in
round ``r - 1``, so it suffices to evaluate, per rule, one *delta
query* per positive occurrence of a recursive predicate — the body
with that occurrence replaced by the previous round's delta relation.

Deltas are kept canonical the same way the naive path keeps its
accumulators canonical: each round's genuinely-new tuples are
``simplify_relation(derived - current)`` (a *semantic* difference, so
re-derivations of already-known points never re-enter the frontier),
and the accumulator is the simplified union.  Termination is therefore
detected exactly as in the naive path — all deltas empty as point sets
— and the two strategies are observationally equivalent (the property
suite and the fuzz harness's ``"ivm"`` leg check this).

Differentiation is sound only where the body is *distributive* in the
changing predicate: conjunction, disjunction and existential
quantification distribute over unions of new tuples, but a positive
occurrence under ``FORALL``, under a (double) negation, or inside an
implication may newly fire only for a *mix* of old and new tuples.
Rules with such an occurrence fall back to full-body re-evaluation per
round (still monotone, still correct); rules whose body never mentions
a changing predicate are skipped entirely — the big win for
incremental refresh.

:class:`ViewMaintainer` packages the same machinery for the MVCC
catalog (:mod:`repro.query.catalog`): materialize a stratified
program's IDB once, then fold each committed mutation batch into the
views by seeding the stratum iteration with the batch's insert deltas.
Non-insert changes (``put``/semantic rewrites) and inserts reaching a
rule *negatively* cannot be folded monotonically; the affected stratum
(and anything downstream of a non-insert view change) is recomputed
from scratch instead — always sound, incremental whenever possible.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core import algebra
from repro.core.errors import EvaluationError, SchemaError
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.simplify import simplify_relation
from repro.obs import metrics, span
from repro.query.ast import (
    And,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
)
from repro.deductive.rules import Rule, head_relation

#: Reserved name prefix for staged delta relations.  Never appears in
#: user catalogs (the parser rejects leading underscores in relation
#: names anyway); delta queries are built by AST substitution, so the
#: prefix never reaches the parser.
DELTA_PREFIX = "__delta__"

#: Sentinel for a non-insert-only change to a relation: the new value
#: is not a superset of the old one, so downstream views cannot be
#: maintained by union — they must recompute.
DIRTY = object()


def delta_name(name: str) -> str:
    """The staging name delta tuples of ``name`` are bound under."""
    return DELTA_PREFIX + name


@dataclass(frozen=True)
class Occurrence:
    """One predicate occurrence in a rule body.

    ``negated`` is the classical polarity (under an odd number of
    negation-introducing contexts); ``brittle`` marks occurrences where
    delta substitution is not distributive (under ``FORALL``, any
    negation, or an implication) even when the polarity is positive.
    """

    name: str
    negated: bool
    brittle: bool


def occurrences(query: Query) -> tuple[Occurrence, ...]:
    """Every predicate occurrence of ``query``, in traversal order."""
    found: list[Occurrence] = []

    def walk(node: Query, negated: bool, brittle: bool) -> None:
        if isinstance(node, Pred):
            found.append(Occurrence(node.name, negated, brittle))
        elif isinstance(node, Not):
            walk(node.body, not negated, True)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part, negated, brittle)
        elif isinstance(node, Implies):
            walk(node.antecedent, not negated, True)
            walk(node.consequent, negated, brittle)
        elif isinstance(node, Exists):
            walk(node.body, negated, brittle)
        elif isinstance(node, Forall):
            walk(node.body, negated, True)

    walk(query, False, False)
    return tuple(found)


class _Substituter:
    """Replace the i-th positive occurrence of one predicate by name.

    Counts positive (non-negated) occurrences in the same traversal
    order as :func:`occurrences`, so an index computed there addresses
    the same atom here.
    """

    def __init__(self, name: str, index: int, new_name: str) -> None:
        self._name = name
        self._index = index
        self._new_name = new_name
        self._seen = 0

    def rewrite(self, node: Query, negated: bool = False) -> Query:
        if isinstance(node, Pred):
            if not negated and node.name == self._name:
                if self._seen == self._index:
                    self._seen += 1
                    return Pred(self._new_name, node.args)
                self._seen += 1
            return node
        if isinstance(node, Not):
            return Not(self.rewrite(node.body, not negated))
        if isinstance(node, (And, Or)):
            return type(node)(
                tuple(self.rewrite(part, negated) for part in node.parts)
            )
        if isinstance(node, Implies):
            return Implies(
                self.rewrite(node.antecedent, not negated),
                self.rewrite(node.consequent, negated),
            )
        if isinstance(node, (Exists, Forall)):
            return type(node)(
                node.var, node.sort, self.rewrite(node.body, negated)
            )
        return node


def differentiate(
    body: Query, changing: Mapping[str, object]
) -> list[Query] | None:
    """The delta queries of ``body`` w.r.t. the changing predicates.

    Returns one substituted query per positive distributive occurrence
    of a changing predicate (the occurrence's atom redirected to its
    staged delta relation), an empty list when the body never mentions
    a changing predicate positively, or ``None`` when some positive
    occurrence is brittle — the caller must re-evaluate the full body.
    """
    queries: list[Query] = []
    position: dict[str, int] = {}
    for occ in occurrences(body):
        if occ.negated:
            continue
        index = position.get(occ.name, 0)
        position[occ.name] = index + 1
        if occ.name not in changing:
            continue
        if occ.brittle:
            return None
        sub = _Substituter(occ.name, index, delta_name(occ.name))
        queries.append(sub.rewrite(body))
    return queries


@dataclass
class StratumStats:
    """Instrumentation for one stratum evaluation."""

    mode: str = "seminaive"
    iterations: int = 0
    rules_fired: int = 0
    delta_tuples: int = 0


def _eval_body(
    body: Query,
    state: Mapping[str, GeneralizedRelation],
    staged: Mapping[str, GeneralizedRelation],
    *,
    max_tuples: int,
    max_extensions: int,
) -> GeneralizedRelation:
    """Evaluate one (possibly delta-substituted) rule body."""
    from repro.query.evaluator import Evaluator

    relations = dict(state)
    relations.update(staged)
    evaluator = Evaluator(
        relations, max_tuples=max_tuples, max_extensions=max_extensions
    )
    return evaluator.evaluate(body)


def seminaive_stratum(
    state: dict[str, GeneralizedRelation],
    rules: list[Rule],
    head_schemas: Mapping[str, Schema],
    stratum_names: set[str],
    seed_deltas: Mapping[str, GeneralizedRelation] | None,
    *,
    max_iterations: int,
    simplify: bool,
    max_tuples: int,
    max_extensions: int,
) -> tuple[dict[str, GeneralizedRelation], StratumStats]:
    """Semi-naive fixpoint of one stratum, updating ``state`` in place.

    With ``seed_deltas`` ``None`` this is a from-scratch evaluation:
    round 0 evaluates every rule's full body (the stratum's IDB starts
    at whatever ``state`` holds, normally empty), later rounds run
    delta queries against the previous round's frontiers.  With seed
    deltas (incremental refresh) round 0 differentiates each rule with
    respect to the *seeded* predicates only — rules that never mention
    a changed input are not evaluated at all.

    Returns the accumulated per-head deltas (what this stratum added to
    ``state``, canonical and simplified) plus instrumentation.
    """
    stats = StratumStats()
    if not rules:
        return {}, stats

    def canonical(rel: GeneralizedRelation) -> GeneralizedRelation:
        return simplify_relation(rel) if simplify else rel

    accumulated: dict[str, GeneralizedRelation] = {}
    frontier: dict[str, GeneralizedRelation] = {}

    def absorb(derived: dict[str, GeneralizedRelation]) -> None:
        """Fold freshly-derived head tuples into state + frontiers."""
        frontier.clear()
        for head, rel in derived.items():
            current = state[head]
            delta = canonical(algebra.subtract(rel, current))
            if delta.is_empty():
                continue
            state[head] = canonical(algebra.union(current, delta))
            frontier[head] = delta
            stats.delta_tuples += len(delta)
            previous = accumulated.get(head)
            accumulated[head] = (
                delta
                if previous is None
                else canonical(algebra.union(previous, delta))
            )

    def fire(rule: Rule, body: Query, staged: Mapping) -> GeneralizedRelation:
        stats.rules_fired += 1
        result = _eval_body(
            body,
            state,
            staged,
            max_tuples=max_tuples,
            max_extensions=max_extensions,
        )
        return head_relation(rule, result, head_schemas[rule.head_name])

    # Round 0: seed the frontier.
    derived: dict[str, GeneralizedRelation] = {}
    if seed_deltas is None:
        for rule in rules:
            shaped = fire(rule, rule.body_query, {})
            derived[rule.head_name] = (
                shaped
                if rule.head_name not in derived
                else algebra.union(derived[rule.head_name], shaped)
            )
    else:
        staged = {
            delta_name(name): rel for name, rel in seed_deltas.items()
        }
        for rule in rules:
            bodies = differentiate(rule.body_query, seed_deltas)
            if bodies is None:
                bodies = [rule.body_query]
            for body in bodies:
                shaped = fire(rule, body, staged)
                derived[rule.head_name] = (
                    shaped
                    if rule.head_name not in derived
                    else algebra.union(derived[rule.head_name], shaped)
                )
    absorb(derived)
    stats.iterations = 1

    # Later rounds: differentiate w.r.t. the previous round's frontier.
    recursive = [
        rule
        for rule in rules
        if any(
            not occ.negated and occ.name in stratum_names
            for occ in occurrences(rule.body_query)
        )
    ]
    for _round in range(1, max_iterations):
        if not frontier:
            return accumulated, stats
        changing = dict(frontier)
        staged = {delta_name(name): rel for name, rel in changing.items()}
        derived = {}
        for rule in recursive:
            bodies = differentiate(rule.body_query, changing)
            if bodies is None:
                bodies = [rule.body_query]
            if not bodies:
                continue
            for body in bodies:
                shaped = fire(rule, body, staged)
                derived[rule.head_name] = (
                    shaped
                    if rule.head_name not in derived
                    else algebra.union(derived[rule.head_name], shaped)
                )
        absorb(derived)
        stats.iterations += 1
    if frontier:
        raise EvaluationError(
            f"no fixpoint within {max_iterations} iterations; the program "
            "may diverge on this database (raise max_iterations if it is "
            "simply slow to converge)"
        )
    return accumulated, stats


@dataclass
class RefreshReport:
    """What one :meth:`ViewMaintainer.refresh` did, for metrics/tests."""

    mode: str = "noop"
    seconds: float = 0.0
    changed_views: tuple[str, ...] = ()
    delta_tuples: int = 0
    rules_fired: int = 0
    strata: list[StratumStats] = field(default_factory=list)


class ViewMaintainer:
    """Materialized IDB views over one stratified program.

    Owns the program's stratification and schemas, and exposes the two
    operations the transactional core needs: :meth:`initialize` (full
    semi-naive evaluation against a committed EDB state) and
    :meth:`refresh` (fold a commit's deltas into the previous views).
    The maintainer itself is stateless with respect to catalog
    versions — callers pass the EDB state and old views explicitly, so
    one maintainer serves every version of a
    :class:`~repro.query.catalog.VersionedCatalog`.
    """

    def __init__(
        self,
        program,
        edb_schemas: Mapping[str, Schema],
        *,
        max_tuples: int,
        max_extensions: int,
        max_iterations: int | None = None,
        simplify: bool = True,
    ) -> None:
        from repro.deductive.program import DEFAULT_MAX_ITERATIONS

        self.program = program
        self.max_tuples = max_tuples
        self.max_extensions = max_extensions
        self.max_iterations = (
            DEFAULT_MAX_ITERATIONS if max_iterations is None else max_iterations
        )
        self.simplify = simplify
        for name in program.idb_names:
            if name in edb_schemas:
                raise SchemaError(
                    f"IDB predicate {name!r} clashes with an EDB relation"
                )
        self.strata: list[list[str]] = program.stratify(dict(edb_schemas))
        self.view_schemas: dict[str, Schema] = {
            name: program.schema(name) for name in program.idb_names
        }
        inputs: set[str] = set()
        for rule in program.rules:
            for occ in occurrences(rule.body_query):
                if occ.name not in self.view_schemas:
                    inputs.add(occ.name)
        #: EDB relation names the program reads — the only relations
        #: whose changes can move a view.
        self.input_names: frozenset[str] = frozenset(inputs)

    @property
    def view_names(self) -> tuple[str, ...]:
        """The materialized view names, in declaration order."""
        return tuple(self.view_schemas)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _stratum_rules(self, layer: list[str]) -> list[Rule]:
        members = set(layer)
        return [r for r in self.program.rules if r.head_name in members]

    def initialize(
        self, edb_state: Mapping[str, GeneralizedRelation]
    ) -> tuple[dict[str, GeneralizedRelation], RefreshReport]:
        """Materialize every view from scratch against ``edb_state``."""
        report = RefreshReport(mode="recompute")
        started = time.perf_counter()
        registry = metrics()
        with span("deductive.refresh", mode="initialize"):
            state: dict[str, GeneralizedRelation] = dict(edb_state)
            for name, schema in self.view_schemas.items():
                state[name] = GeneralizedRelation.empty(schema)
            for layer in self.strata:
                _deltas, stats = seminaive_stratum(
                    state,
                    self._stratum_rules(layer),
                    self.view_schemas,
                    set(layer),
                    None,
                    max_iterations=self.max_iterations,
                    simplify=self.simplify,
                    max_tuples=self.max_tuples,
                    max_extensions=self.max_extensions,
                )
                report.strata.append(stats)
                report.rules_fired += stats.rules_fired
                report.delta_tuples += stats.delta_tuples
        views = {name: state[name] for name in self.view_schemas}
        report.changed_views = tuple(self.view_schemas)
        report.seconds = time.perf_counter() - started
        registry.counter("deductive.refresh.recompute").inc()
        registry.counter("deductive.rules_fired").inc(report.rules_fired)
        registry.histogram("deductive.refresh.seconds").observe(report.seconds)
        return views, report

    def refresh(
        self,
        edb_state: Mapping[str, GeneralizedRelation],
        old_views: Mapping[str, GeneralizedRelation],
        deltas: Mapping[str, object],
    ) -> tuple[dict[str, GeneralizedRelation], RefreshReport]:
        """Fold committed deltas into the views.

        ``deltas`` maps changed input names to either a
        :class:`GeneralizedRelation` of *inserted* tuples or the
        :data:`DIRTY` sentinel (the relation changed in a way that is
        not a pure insertion).  Views whose strata are untouched are
        carried over by reference; insert-only changes reaching rules
        positively are folded by semi-naive delta iteration; anything
        else recomputes the affected stratum (and, transitively,
        whatever its non-insert view changes poison downstream).
        Missing views (e.g. first refresh after adoption failed) fall
        back to :meth:`initialize`.
        """
        relevant = {
            name: delta
            for name, delta in deltas.items()
            if name in self.input_names
        }
        if not relevant:
            report = RefreshReport(mode="noop")
            return dict(old_views), report
        if any(name not in old_views for name in self.view_schemas):
            return self.initialize(edb_state)
        report = RefreshReport(mode="incremental")
        started = time.perf_counter()
        registry = metrics()
        changed: dict[str, object] = dict(relevant)
        changed_views: list[str] = []
        with span("deductive.refresh", mode="refresh"):
            state: dict[str, GeneralizedRelation] = dict(edb_state)
            state.update(old_views)
            for layer in self.strata:
                rules = self._stratum_rules(layer)
                occs = [
                    occ for rule in rules for occ in occurrences(rule.body_query)
                ]
                touched = {
                    occ.name for occ in occs if occ.name in changed
                }
                if not touched:
                    stat = StratumStats(mode="skip")
                    report.strata.append(stat)
                    continue
                negated_touch = any(
                    occ.negated and occ.name in changed for occ in occs
                )
                dirty_touch = any(
                    changed.get(name) is DIRTY for name in touched
                )
                if negated_touch or dirty_touch:
                    stats = self._recompute_stratum(
                        state, layer, rules, changed
                    )
                    report.mode = "recompute"
                else:
                    seed = {
                        name: changed[name]
                        for name in touched
                        if isinstance(
                            changed.get(name), GeneralizedRelation
                        )
                    }
                    deltas_out, stats = seminaive_stratum(
                        state,
                        rules,
                        self.view_schemas,
                        set(layer),
                        seed,
                        max_iterations=self.max_iterations,
                        simplify=self.simplify,
                        max_tuples=self.max_tuples,
                        max_extensions=self.max_extensions,
                    )
                    changed.update(deltas_out)
                report.strata.append(stats)
                report.rules_fired += stats.rules_fired
                report.delta_tuples += stats.delta_tuples
                for name in layer:
                    if name in changed:
                        changed_views.append(name)
        views = {name: state[name] for name in self.view_schemas}
        report.changed_views = tuple(changed_views)
        report.seconds = time.perf_counter() - started
        registry.counter(
            "deductive.refresh.incremental"
            if report.mode == "incremental"
            else "deductive.refresh.recompute"
        ).inc()
        registry.counter("deductive.rules_fired").inc(report.rules_fired)
        registry.histogram("deductive.delta.tuples").observe(
            report.delta_tuples
        )
        registry.histogram("deductive.refresh.seconds").observe(report.seconds)
        return views, report

    def _recompute_stratum(
        self,
        state: dict[str, GeneralizedRelation],
        layer: list[str],
        rules: list[Rule],
        changed: dict[str, object],
    ) -> StratumStats:
        """Re-derive one stratum from scratch; classify its deltas."""
        old = {name: state[name] for name in layer}
        for name in layer:
            state[name] = GeneralizedRelation.empty(self.view_schemas[name])
        _deltas, stats = seminaive_stratum(
            state,
            rules,
            self.view_schemas,
            set(layer),
            None,
            max_iterations=self.max_iterations,
            simplify=self.simplify,
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
        )
        stats.mode = "recompute"
        for name in layer:
            inserted = algebra.subtract(state[name], old[name])
            removed = algebra.subtract(old[name], state[name])
            if not removed.is_empty():
                changed[name] = DIRTY
            elif not inserted.is_empty():
                changed[name] = simplify_relation(inserted)
            else:
                changed.pop(name, None)
                # Unchanged as a point set: keep the old canonical
                # object so versions can share it.
                state[name] = old[name]
        return stats


def insert_delta(
    schema: Schema, tuples
) -> GeneralizedRelation:
    """Build a delta relation for a batch of inserted tuples."""
    delta = GeneralizedRelation.empty(schema)
    for gtuple in tuples:
        delta.add(gtuple)
    return delta
