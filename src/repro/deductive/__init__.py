"""A Datalog-style deductive layer over generalized relations (Sec. 5).

Programs evaluate semi-naively by default (per-rule delta queries; see
:mod:`repro.deductive.incremental`), with the naive full-body fixpoint
kept as the oracle (``strategy="naive"`` / ``REPRO_SEMINAIVE=0``).
:class:`~repro.deductive.incremental.ViewMaintainer` is the bridge to
the transactional core: installed through
:meth:`repro.query.database.Database.install_program`, it keeps the
program's IDB materialized in every committed catalog version.
"""

from repro.deductive.program import (
    DEFAULT_MAX_ITERATIONS,
    STRATEGIES,
    Program,
    default_strategy,
)
from repro.deductive.incremental import (
    DIRTY,
    RefreshReport,
    ViewMaintainer,
)
from repro.deductive.rules import HeadArg, Rule, head_relation

__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "DIRTY",
    "HeadArg",
    "Program",
    "RefreshReport",
    "Rule",
    "STRATEGIES",
    "ViewMaintainer",
    "default_strategy",
    "head_relation",
]
