"""A Datalog-style deductive layer over generalized relations (Sec. 5)."""

from repro.deductive.program import DEFAULT_MAX_ITERATIONS, Program
from repro.deductive.rules import HeadArg, Rule, head_relation

__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "HeadArg",
    "Program",
    "Rule",
    "head_relation",
]
