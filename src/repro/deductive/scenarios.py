"""Temporal-graph scenarios: periodic edge schedules + reachability.

The streaming benchmark, the IVM fuzz leg and several test suites all
need the same shaped workload: a graph whose edges are *schedules* —
linear repeating points ``offset + period·n`` (the paper's lrps), i.e.
"the edge ``x → y`` can be taken at every such instant" — and a
recursive program asking which nodes are reachable when consecutive
hops must happen within a window of ``Δt`` time units::

    declare Reach(t:T, src:D, dst:D)
    Reach(t, x, y) <- Edge(t, x, y)
    Reach(t, x, z) <- EXISTS s. EXISTS u. (Reach(s, x, u)
                        & Edge(t, u, z) & s <= t & t <= s + Δt)

Because the schedules are infinite, this is exactly the setting the
paper's generalized relations exist for: the materialized ``Reach``
view is itself an infinite (periodic) relation, maintained
incrementally as edge batches stream in.
"""

from __future__ import annotations

import random

from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple

#: The EDB schema every scenario streams into.
EDGE_SCHEMA = Schema.make(temporal=["t"], data=["src", "dst"])


def reachability_program(window: int = 6):
    """The reachability-within-``window`` program over ``Edge``.

    Returns a freshly parsed
    :class:`~repro.deductive.program.Program`; ``window`` is the
    maximum time between consecutive hops (baked into the rule text as
    a successor offset).
    """
    from repro.deductive.program import Program

    return Program.from_text(
        "declare Reach(t:T, src:D, dst:D)\n"
        "Reach(t, x, y) <- Edge(t, x, y)\n"
        "Reach(t, x, z) <- EXISTS s. EXISTS u. (Reach(s, x, u) "
        f"& Edge(t, u, z) & s <= t & t <= s + {window})\n"
    )


def edge_tuple(
    offset: int, period: int, src: str, dst: str
) -> GeneralizedTuple:
    """One lrp-encoded edge schedule: ``x → y`` at ``offset + period·n``."""
    return GeneralizedTuple(
        lrps=(LRP.make(offset, period),),
        dbm=DBM(1),
        data=(src, dst),
    )


def edge_batches(
    n_nodes: int,
    n_batches: int,
    batch_size: int,
    *,
    period: int = 24,
    seed: int = 0,
) -> list[list[GeneralizedTuple]]:
    """Deterministic batches of edge schedules for streaming ingest.

    Edges connect random node pairs of a ``n_nodes``-node graph
    (labels ``n0..n<k>``), each on its own periodic schedule with a
    random phase; duplicates across batches are allowed (re-deriving
    known points is exactly what incremental maintenance must absorb
    cheaply).  Same ``seed`` → same batches, so benchmark runs are
    comparable across machines.
    """
    rng = random.Random(seed)
    batches: list[list[GeneralizedTuple]] = []
    for _ in range(n_batches):
        batch = []
        for _ in range(batch_size):
            src = f"n{rng.randrange(n_nodes)}"
            dst = f"n{rng.randrange(n_nodes)}"
            batch.append(
                edge_tuple(rng.randrange(period), period, src, dst)
            )
        batches.append(batch)
    return batches


def edge_relation(batches) -> GeneralizedRelation:
    """Fold streamed batches into one ``Edge`` relation (the oracle EDB)."""
    out = GeneralizedRelation.empty(EDGE_SCHEMA)
    for batch in batches:
        for gtuple in batch:
            out.add(gtuple)
    return out
