"""Datalog-style rules over generalized relations.

Section 5 of the paper situates the framework against Chomicki &
Imieliński's deductive approach: "we incorporate infinite predicates
with arbitrary arity directly into the database.  This makes operations
on temporal predicates easier and *does not exclude the eventual use of
a deductive layer*."  This package is that layer: Datalog rules whose
EDB and IDB relations are generalized (infinite) relations, evaluated
through the closed algebra.

A rule looks like::

    Busy(t, r) <- Perform(t1, t2, r, k) & t1 <= t & t <= t2

The body is any conjunction the query language accepts (positive atoms,
negated atoms, temporal comparisons, data equalities); the head lists
distinct variables and constants.  Safety requires every head variable
to be free in the body.

Recursion is supported with *semantic* fixpoint detection: because
generalized relations are finitely represented and equivalence is
decidable (Theorem 3.5 via double difference), iteration stops when no
IDB relation changes as a *set of points* — not merely syntactically.
A ``max_iterations`` guard keeps genuinely divergent programs (e.g.
``P(t + 1) <- P(t)`` seeded below an infinite progression) from
spinning; the paper's framework does not promise termination for those,
and neither do we.
"""

from __future__ import annotations

import re
from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.core import algebra
from repro.core.errors import ParseError, SchemaError
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.query.ast import Sort, free_variables
from repro.query.parser import parse_query

_HEAD_RE = re.compile(
    r"""^\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*
    \((?P<args>[^)]*)\)\s*$""",
    re.VERBOSE,
)
_INT_RE = re.compile(r"^-?\d+$")
_STRING_RE = re.compile(r'^"[^"]*"$|^\'[^\']*\'$')


@dataclass(frozen=True)
class HeadArg:
    """One argument of a rule head: a variable or a constant."""

    var: str | None = None
    const: Hashable | None = None

    @property
    def is_var(self) -> bool:
        return self.var is not None


@dataclass
class Rule:
    """A parsed rule: head predicate, head arguments, body query text."""

    head_name: str
    head_args: tuple[HeadArg, ...]
    body_text: str
    body_query: object = field(default=None, repr=False)
    #: The schema mapping the body was last parsed against.  Binding is
    #: keyed to it so a program evaluated against one database rebinds
    #: cleanly when re-evaluated against a database whose EDB schemas
    #: differ — reusing the stale bound query was a silent-wrong-answer
    #: bug (see :meth:`ensure_bound`).
    bound_key: tuple = field(default=None, repr=False, compare=False)

    @classmethod
    def parse(cls, text: str) -> Rule:
        """Split ``Head(args) <- body`` and parse the head.

        The body is parsed later, once all predicate schemas (EDB and
        IDB) are known.
        """
        if "<-" not in text:
            raise ParseError(f"rule needs '<-': {text!r}")
        head_text, body_text = text.split("<-", 1)
        m = _HEAD_RE.match(head_text)
        if m is None:
            raise ParseError(f"malformed rule head: {head_text.strip()!r}")
        args: list[HeadArg] = []
        arg_body = m.group("args").strip()
        pieces = [p.strip() for p in arg_body.split(",")] if arg_body else []
        seen_vars: set[str] = set()
        for piece in pieces:
            if not piece:
                raise ParseError(f"empty argument in head: {head_text!r}")
            if _INT_RE.match(piece):
                args.append(HeadArg(const=int(piece)))
            elif _STRING_RE.match(piece):
                args.append(HeadArg(const=piece[1:-1]))
            else:
                if piece in seen_vars:
                    raise ParseError(
                        f"head variable {piece!r} repeated; bind it once "
                        "and equate in the body instead"
                    )
                seen_vars.add(piece)
                args.append(HeadArg(var=piece))
        return cls(
            head_name=m.group("name"),
            head_args=tuple(args),
            body_text=body_text.strip(),
        )

    @property
    def head_vars(self) -> tuple[str, ...]:
        """The head's variable names, in argument order."""
        return tuple(a.var for a in self.head_args if a.is_var)

    def ensure_bound(self, schemas: dict[str, Schema]) -> None:
        """Bind the body, rebinding if ``schemas`` changed since last time.

        A :class:`Rule` caches its parsed body, but the parse depends
        on the predicate schemas in scope.  Evaluating one
        :class:`~repro.deductive.program.Program` against two databases
        with different EDB schemas must therefore re-parse — this
        method compares the schema mapping against the one the cached
        body was built from and rebinds only on a mismatch.
        """
        key = tuple(sorted(schemas.items(), key=lambda item: item[0]))
        if self.body_query is None or self.bound_key != key:
            self.bind(schemas)

    def bind(self, schemas: dict[str, Schema]) -> None:
        """Parse the body against the known schemas and check safety."""
        self.bound_key = None
        self.body_query = parse_query(self.body_text, schemas)
        free = free_variables(self.body_query)
        _check_negation_safety(self.body_query, self.head_name)
        head_schema = schemas[self.head_name]
        if len(self.head_args) != len(head_schema):
            raise SchemaError(
                f"head {self.head_name} has {len(self.head_args)} args, "
                f"schema has {len(head_schema)}"
            )
        for arg, attr in zip(self.head_args, head_schema.attributes):
            if not arg.is_var:
                if attr.temporal and not isinstance(arg.const, int):
                    raise SchemaError(
                        f"constant {arg.const!r} in temporal position of "
                        f"{self.head_name}"
                    )
                continue
            if arg.var not in free:
                raise SchemaError(
                    f"unsafe rule: head variable {arg.var!r} is not free "
                    f"in the body of {self.head_name}"
                )
            var_sort = free[arg.var]
            want = Sort.TEMPORAL if attr.temporal else Sort.DATA
            if var_sort != want:
                raise SchemaError(
                    f"head variable {arg.var!r} is {var_sort.value} in the "
                    f"body but {want.value} in {self.head_name}'s schema"
                )
        # Stamped only after the parse and every safety check passed:
        # a failed bind must fail again (not be masked) on retry.
        self.bound_key = tuple(
            sorted(schemas.items(), key=lambda item: item[0])
        )

    def __str__(self) -> str:
        rendered = ", ".join(
            a.var if a.is_var else repr(a.const) for a in self.head_args
        )
        return f"{self.head_name}({rendered}) <- {self.body_text}"


def _check_negation_safety(body_query, head_name: str) -> None:
    """Reject free variables that occur only under a negation.

    In FO semantics, ``P(x) & ~Q(x, y)`` with ``y`` free derives ``x``
    whenever *some* ``y`` fails ``Q`` — almost never what a Datalog rule
    means.  The conventional reading is ``~(EXISTS y. Q(x, y))``; we
    require the user to write that quantifier, and flag the dangling
    variable otherwise.
    """
    from repro.query.ast import (
        And,
        Cmp,
        DataEq,
        DataVar,
        Exists,
        Forall,
        Implies,
        Not,
        Or,
        Pred,
        TempVar,
    )

    positive: set[str] = set()
    negated_only: set[str] = set()

    def atom_vars(node) -> set[str]:
        out: set[str] = set()
        if isinstance(node, Pred):
            for arg in node.args:
                if isinstance(arg, (TempVar, DataVar)):
                    out.add(arg.name)
        elif isinstance(node, Cmp):
            for term in (node.left, node.right):
                if isinstance(term, TempVar):
                    out.add(term.name)
        elif isinstance(node, DataEq):
            for term in (node.left, node.right):
                if isinstance(term, DataVar):
                    out.add(term.name)
        return out

    def walk(node, negated: bool, bound: set[str]) -> None:
        if isinstance(node, (Pred, Cmp, DataEq)):
            names = atom_vars(node) - bound
            if negated:
                negated_only.update(names)
            else:
                positive.update(names)
        elif isinstance(node, Not):
            walk(node.body, not negated, bound)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part, negated, bound)
        elif isinstance(node, Implies):
            walk(node.antecedent, not negated, bound)
            walk(node.consequent, negated, bound)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body, negated, bound | {node.var})

    walk(body_query, False, set())
    dangling = negated_only - positive
    if dangling:
        raise SchemaError(
            f"unsafe rule for {head_name}: variable(s) "
            f"{sorted(dangling)} occur only under negation; quantify "
            "them inside the negation (e.g. ~(EXISTS v. ...))"
        )


def head_relation(
    rule: Rule,
    body_result: GeneralizedRelation,
    head_schema: Schema,
) -> GeneralizedRelation:
    """Shape a body-evaluation result into head-schema tuples.

    Projects onto the head variables, inserts constant columns, and
    reorders to the head schema's attribute order.
    """
    # Project the body result down to the head variables.
    keep = [v for v in rule.head_vars if body_result.schema.has(v)]
    projected = algebra.project(body_result, keep)
    # Rename head variables onto the head attribute names, position by
    # position, avoiding collisions via a temp prefix.
    temp_names: dict[str, str] = {}
    for i, arg in enumerate(rule.head_args):
        if arg.is_var:
            temp_names[arg.var] = f"_h{i}"
    projected = algebra.rename(projected, temp_names)
    out = GeneralizedRelation.empty(head_schema)
    order: list[str] = []
    const_relations: list[GeneralizedRelation] = []
    for i, (arg, attr) in enumerate(zip(rule.head_args, head_schema.attributes)):
        col = f"_h{i}"
        order.append(col)
        if arg.is_var:
            continue
        # Constant column: a singleton relation to product in.
        if attr.temporal:
            const_rel = GeneralizedRelation.empty(
                Schema.make(temporal=[col])
            )
            const_rel.add(GeneralizedTuple.make([int(arg.const)]))
        else:
            const_rel = GeneralizedRelation.empty(Schema.make(data=[col]))
            const_rel.add(GeneralizedTuple.make([], data=(arg.const,)))
        const_relations.append(const_rel)
    combined = projected
    for const_rel in const_relations:
        combined = algebra.product(combined, const_rel)
    shaped = algebra.project(combined, order)
    renamed = algebra.rename(
        shaped,
        {f"_h{i}": attr.name
         for i, attr in enumerate(head_schema.attributes)},
    )
    for gtuple in renamed:
        out.add(gtuple)
    return out
