"""Datalog programs: declaration, stratification, fixpoint evaluation."""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.core import algebra
from repro.core.errors import EvaluationError, ReproValueError, SchemaError
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.simplify import simplify_relation
from repro.query.ast import Not, Pred, Query
from repro.query.database import Database
from repro.deductive.rules import Rule, head_relation

DEFAULT_MAX_ITERATIONS = 50

#: Known evaluation strategies: ``"seminaive"`` iterates per-rule delta
#: queries (the default), ``"naive"`` re-evaluates every full body per
#: round — kept as the executable oracle the equivalence suite and the
#: fuzz harness's ``"ivm"`` leg compare against.
STRATEGIES = ("seminaive", "naive")


def default_strategy() -> str:
    """The strategy used when :meth:`Program.evaluate` gets none.

    ``REPRO_SEMINAIVE=0`` forces the naive oracle globally (the same
    spirit as ``REPRO_OPTIMIZE`` for the planner); anything else —
    including unset — selects semi-naive evaluation.
    """
    return (
        "naive" if os.environ.get("REPRO_SEMINAIVE") == "0" else "seminaive"
    )


class Program:
    """A set of Datalog rules over declared IDB predicates.

    Usage::

        program = Program()
        program.declare("Busy", temporal=["t"], data=["robot"])
        program.rule("Busy(t, r) <- Perform(t1, t2, r, k) "
                     "& t1 <= t & t <= t2")
        result = program.evaluate(db)      # a Database with Busy filled

    Rules may be recursive; evaluation iterates strata to a *semantic*
    fixpoint (relations compared as point sets) under a
    ``max_iterations`` guard.
    """

    def __init__(self) -> None:
        self._idb: dict[str, Schema] = {}
        self._rules: list[Rule] = []

    @classmethod
    def from_text(cls, text: str) -> Program:
        """Parse a whole program.

        Syntax: one statement per line (blank lines and ``#`` comments
        ignored); declarations use the relation-header syntax, rules the
        arrow syntax::

            declare Busy(t:T, robot:D)
            Busy(t, r) <- Perform(a, b, r, k) & a <= t & t <= b

        A rule may span lines by ending continuation lines with ``\\``.
        """
        from repro.storage.textio import parse_header

        program = cls()
        pending = ""
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if line.endswith("\\"):
                pending += line[:-1] + " "
                continue
            statement = (pending + line).strip()
            pending = ""
            if statement.startswith("declare "):
                name, schema = parse_header(
                    "relation " + statement[len("declare "):]
                )
                if name in program._idb:
                    raise SchemaError(
                        f"IDB predicate {name!r} already declared"
                    )
                program._idb[name] = schema
            else:
                program.rule(statement)
        if pending:
            raise SchemaError("dangling line continuation at end of program")
        return program

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def declare(
        self,
        name: str,
        temporal: Sequence[str] = (),
        data: Sequence[str] = (),
    ) -> None:
        """Declare an IDB predicate and its schema."""
        if name in self._idb:
            raise SchemaError(f"IDB predicate {name!r} already declared")
        self._idb[name] = Schema.make(temporal, data)

    def rule(self, text: str) -> Rule:
        """Add a rule (head must be a declared IDB predicate)."""
        parsed = Rule.parse(text)
        if parsed.head_name not in self._idb:
            raise SchemaError(
                f"rule head {parsed.head_name!r} is not a declared IDB "
                "predicate; call declare() first"
            )
        self._rules.append(parsed)
        return parsed

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The program's rules, in declaration order."""
        return tuple(self._rules)

    @property
    def idb_names(self) -> tuple[str, ...]:
        """Declared IDB predicate names, in declaration order."""
        return tuple(self._idb)

    def schema(self, name: str) -> Schema:
        """The declared schema of one IDB predicate."""
        try:
            return self._idb[name]
        except KeyError:
            raise SchemaError(
                f"{name!r} is not a declared IDB predicate"
            ) from None

    # ------------------------------------------------------------------
    # dependency analysis
    # ------------------------------------------------------------------

    def _body_dependencies(self, rule: Rule) -> tuple[set[str], set[str]]:
        """IDB predicates the rule's body uses (positively, negatively)."""
        positive: set[str] = set()
        negative: set[str] = set()

        def walk(node: Query, negated: bool) -> None:
            if isinstance(node, Pred):
                if node.name in self._idb:
                    (negative if negated else positive).add(node.name)
            elif isinstance(node, Not):
                walk(node.body, not negated)
            elif hasattr(node, "parts"):
                for part in node.parts:
                    walk(part, negated)
            elif hasattr(node, "antecedent"):
                walk(node.antecedent, not negated)
                walk(node.consequent, negated)
            elif hasattr(node, "body"):
                walk(node.body, negated)

        walk(rule.body_query, False)
        return positive, negative

    def stratify(self, edb_schemas: dict[str, Schema]) -> list[list[str]]:
        """Partition IDB predicates into strata.

        Standard stratified-negation semantics: a predicate must live in
        a strictly higher stratum than anything it depends on
        negatively, and at least as high as anything it depends on
        positively.  A cycle through negation raises
        :class:`EvaluationError`.
        """
        schemas = {**edb_schemas, **self._idb}
        for rule in self._rules:
            # Keyed rebinding: a body parsed against one database's
            # schemas is re-parsed when the mapping differs (a program
            # is reusable across databases with different EDB shapes).
            rule.ensure_bound(schemas)
        stratum = {name: 0 for name in self._idb}
        deps: list[tuple[str, str, bool]] = []
        for rule in self._rules:
            positive, negative = self._body_dependencies(rule)
            for dep in positive:
                deps.append((rule.head_name, dep, False))
            for dep in negative:
                deps.append((rule.head_name, dep, True))
        n = len(self._idb)
        for _ in range(n * n + 1):
            changed = False
            for head, dep, is_negative in deps:
                needed = stratum[dep] + (1 if is_negative else 0)
                if stratum[head] < needed:
                    stratum[head] = needed
                    changed = True
            if not changed:
                break
        else:
            raise EvaluationError(
                "program is not stratifiable (cycle through negation)"
            )
        if any(level > n for level in stratum.values()):
            raise EvaluationError(
                "program is not stratifiable (cycle through negation)"
            )
        layers: dict[int, list[str]] = {}
        for name, level in stratum.items():
            layers.setdefault(level, []).append(name)
        return [layers[level] for level in sorted(layers)]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        db: Database,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        simplify: bool = True,
        strategy: str | None = None,
    ) -> Database:
        """Evaluate the program; returns a new Database with IDB filled.

        EDB relations are taken from ``db`` (and are never modified).
        Within each stratum, rules are iterated to a semantic fixpoint.

        ``strategy`` selects how each stratum reaches its fixpoint:
        ``"seminaive"`` (the default) iterates per-rule *delta* queries
        — each round only re-derives from the previous round's new
        tuples (see :mod:`repro.deductive.incremental`); ``"naive"``
        re-evaluates every full rule body per round, and is kept as the
        executable oracle.  Both produce semantically identical
        databases; ``REPRO_SEMINAIVE=0`` flips the default to naive.
        """
        if strategy is None:
            strategy = default_strategy()
        if strategy not in STRATEGIES:
            raise ReproValueError(
                f"unknown evaluation strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        for name in self._idb:
            if name in db:
                raise SchemaError(
                    f"IDB predicate {name!r} clashes with an EDB relation"
                )
        out = Database(
            max_tuples=db.max_tuples, max_extensions=db.max_extensions
        )
        for name in db.names:
            out.register(name, db.relation(name))
        for name, schema in self._idb.items():
            out.register(name, GeneralizedRelation.empty(schema))
        strata = self.stratify(db.schemas())
        if strategy == "seminaive":
            self._evaluate_seminaive(out, strata, max_iterations, simplify)
            return out
        for layer in strata:
            layer_rules = [
                r for r in self._rules if r.head_name in set(layer)
            ]
            self._fixpoint(out, layer_rules, max_iterations, simplify)
        return out

    def _evaluate_seminaive(
        self,
        out: Database,
        strata: list[list[str]],
        max_iterations: int,
        simplify: bool,
    ) -> None:
        """Run every stratum through the semi-naive delta iteration."""
        from repro.deductive.incremental import seminaive_stratum
        from repro.obs import metrics, span

        registry = metrics()
        state = {name: out.relation(name) for name in out.names}
        with span("deductive.evaluate", strategy="seminaive"):
            for layer in strata:
                layer_rules = [
                    r for r in self._rules if r.head_name in set(layer)
                ]
                _deltas, stats = seminaive_stratum(
                    state,
                    layer_rules,
                    self._idb,
                    set(layer),
                    None,
                    max_iterations=max_iterations,
                    simplify=simplify,
                    max_tuples=out.max_tuples,
                    max_extensions=out.max_extensions,
                )
                registry.counter("deductive.rules_fired").inc(
                    stats.rules_fired
                )
                registry.histogram("deductive.iterations").observe(
                    stats.iterations
                )
        for name in self._idb:
            out.register(name, state[name])

    def _fixpoint(
        self,
        db: Database,
        rules: list[Rule],
        max_iterations: int,
        simplify: bool,
    ) -> None:
        if not rules:
            return
        for iteration in range(max_iterations):
            changed = False
            for rule in rules:
                body = db.query(rule.body_query)
                derived = head_relation(
                    rule, body, self._idb[rule.head_name]
                )
                current = db.relation(rule.head_name)
                merged = algebra.union(current, derived)
                if simplify:
                    merged = simplify_relation(merged)
                if not algebra.equivalent(merged, current):
                    db.register(rule.head_name, merged)
                    changed = True
            if not changed:
                return
        raise EvaluationError(
            f"no fixpoint within {max_iterations} iterations; the program "
            "may diverge on this database (raise max_iterations if it is "
            "simply slow to converge)"
        )
