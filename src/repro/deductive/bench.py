"""The streaming-ingest benchmark: ``BENCH_stream.json``.

Usage::

    python -m repro.deductive.bench              # full run
    python -m repro.deductive.bench --smoke      # small/fast variant
    python -m repro.deductive.bench --out out.json

Drives the temporal-graph scenario of
:mod:`repro.deductive.scenarios` end to end: a durable
:class:`~repro.query.database.Database` with the
reachability-within-Δt program installed ingests batches of
lrp-encoded edge schedules through
:meth:`~repro.query.database.Database.append_stream`, measuring the
two claims the incremental deductive core makes:

* **streaming ingest is cheap** — absolute tuples/s through the WAL
  append path, batch commit latency included (each batch is one
  transaction: one fsync, one view refresh);
* **incremental refresh beats recomputation** — per batch, the
  materialized ``Reach`` view is folded forward semi-naively from the
  batch's insert delta; the same state is also rebuilt from scratch
  (:meth:`~repro.deductive.incremental.ViewMaintainer.initialize`)
  and the two latencies compared.  The gate is a ≥ 2× mean speedup,
  and every sampled refresh is checked point-set-equivalent to the
  recomputation (the benchmark doubles as an end-to-end IVM oracle
  test).

``summary.ok`` gates both, which is what CI's stream-smoke step
asserts.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time

from repro.core import algebra
from repro.core.relations import GeneralizedRelation

from repro.deductive.scenarios import (
    EDGE_SCHEMA,
    edge_batches,
    reachability_program,
)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def run_stream_bench(*, smoke: bool = False, seed: int = 0) -> dict:
    """Run the streaming benchmark; returns the JSON-ready report."""
    if smoke:
        n_nodes, n_batches, batch_size, window = 6, 14, 3, 4
    else:
        n_nodes, n_batches, batch_size, window = 8, 16, 4, 6
    batches = edge_batches(
        n_nodes, n_batches, batch_size, period=24, seed=seed
    )

    from repro.query.database import Database

    append_seconds: list[float] = []
    refresh_ms: list[float] = []
    recompute_ms: list[float] = []
    equiv_checks = 0
    equiv_ok = True
    total_tuples = 0

    with tempfile.TemporaryDirectory() as root:
        db = Database.open(f"{root}/stream.db")
        try:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.commit()
            db.install_program(reachability_program(window))
            maintainer = db._core.maintainer
            for batch in batches:
                started = time.perf_counter()
                db.append_stream("Edge", batch)
                append_seconds.append(time.perf_counter() - started)
                total_tuples += len(batch)
                # Same state, rebuilt from scratch: the recomputation
                # baseline *and* the equivalence oracle for this batch.
                edb = {"Edge": db.relation("Edge")}
                recomputed, report = maintainer.initialize(edb)
                recompute_ms.append(report.seconds * 1000.0)
                equiv_checks += 1
                if not algebra.equivalent(
                    recomputed["Reach"], db.relation("Reach")
                ):
                    equiv_ok = False
            # Ingest time is the append path alone — the per-batch
            # recomputation above is the oracle, not part of ingest.
            ingest_seconds = sum(append_seconds)
        finally:
            db.close()

    # Isolate refresh latency from WAL/fsync cost: replay the same
    # batches through the maintainer alone.
    from repro.deductive.incremental import insert_delta

    edb_state = {"Edge": GeneralizedRelation.empty(EDGE_SCHEMA)}
    program = reachability_program(window)
    from repro.deductive.incremental import ViewMaintainer

    solo = ViewMaintainer(
        program,
        {"Edge": EDGE_SCHEMA},
        max_tuples=100_000,
        max_extensions=100_000,
    )
    views, _report = solo.initialize(edb_state)
    for batch in batches:
        delta = insert_delta(EDGE_SCHEMA, batch)
        merged = edb_state["Edge"].copy()
        for gtuple in batch:
            merged.add(gtuple)
        edb_state["Edge"] = merged
        views, report = solo.refresh(edb_state, views, {"Edge": delta})
        refresh_ms.append(report.seconds * 1000.0)

    refresh_mean = statistics.fmean(refresh_ms) if refresh_ms else 0.0
    recompute_mean = (
        statistics.fmean(recompute_ms) if recompute_ms else 0.0
    )
    speedup = (
        recompute_mean / refresh_mean if refresh_mean > 0 else float("inf")
    )
    tuples_per_s = (
        total_tuples / ingest_seconds if ingest_seconds > 0 else 0.0
    )
    ok = equiv_ok and speedup >= 2.0
    return {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "smoke": smoke,
            "seed": seed,
        },
        "workload": {
            "n_nodes": n_nodes,
            "n_batches": n_batches,
            "batch_size": batch_size,
            "window": window,
            "period": 24,
        },
        "ingest": {
            "tuples": total_tuples,
            "seconds": round(ingest_seconds, 4),
            "tuples_per_s": round(tuples_per_s, 1),
            "batch_p50_ms": round(
                _percentile(append_seconds, 0.5) * 1000, 2
            ),
            "batch_p99_ms": round(
                _percentile(append_seconds, 0.99) * 1000, 2
            ),
        },
        "refresh": {
            "incremental_mean_ms": round(refresh_mean, 2),
            "incremental_p99_ms": round(_percentile(refresh_ms, 0.99), 2),
            "recompute_mean_ms": round(recompute_mean, 2),
            "recompute_p99_ms": round(
                _percentile(recompute_ms, 0.99), 2
            ),
            "speedup": round(speedup, 2),
            "samples": len(refresh_ms),
        },
        "equivalence": {"checked_batches": equiv_checks, "ok": equiv_ok},
        "summary": {
            "ok": ok,
            "incremental_speedup_ok": speedup >= 2.0,
            "equivalence_ok": equiv_ok,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming-ingest + incremental-view benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small/fast variant"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="BENCH_stream.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    report = run_stream_bench(smoke=args.smoke, seed=args.seed)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    ingest = report["ingest"]
    refresh = report["refresh"]
    print(
        f"ingest: {ingest['tuples']} tuples in {ingest['seconds']}s "
        f"({ingest['tuples_per_s']}/s)"
    )
    print(
        f"refresh: incremental {refresh['incremental_mean_ms']}ms vs "
        f"recompute {refresh['recompute_mean_ms']}ms "
        f"(x{refresh['speedup']})"
    )
    print(f"summary.ok: {report['summary']['ok']} -> {args.out}")
    return 0 if report["summary"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
