"""Interval reasoning on top of generalized relations.

Allen's thirteen relations as constraint templates, plus calendar
helpers for building periodic schedules (the paper's Example 2.4).
"""

from repro.intervals.allen import (
    ALLEN_INVERSES,
    ALLEN_TEMPLATES,
    allen_atoms,
    classify,
    holds,
    pairs_related,
    proper,
)
from repro.intervals.composition import (
    compose,
    composition_table,
    feasible_relations,
)
from repro.intervals.calendar import (
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    MINUTES_PER_WEEK,
    RecurringTrip,
    at_time,
    daily,
    every,
    fmt_time,
    hourly,
    liege_brussels_schedule,
    schedule_relation,
    weekly,
)
from repro.intervals.scheduling import (
    ITINERARY_PROGRAM,
    Scenario,
    contention_database,
    itinerary_database,
    meeting_database,
    oracle_optimum,
    run_scenario,
    scenario_pack,
    trip_database,
)

__all__ = [
    "ALLEN_INVERSES",
    "ALLEN_TEMPLATES",
    "ITINERARY_PROGRAM",
    "MINUTES_PER_DAY",
    "MINUTES_PER_HOUR",
    "MINUTES_PER_WEEK",
    "RecurringTrip",
    "Scenario",
    "allen_atoms",
    "at_time",
    "classify",
    "compose",
    "composition_table",
    "contention_database",
    "daily",
    "every",
    "feasible_relations",
    "fmt_time",
    "holds",
    "hourly",
    "itinerary_database",
    "liege_brussels_schedule",
    "meeting_database",
    "oracle_optimum",
    "pairs_related",
    "proper",
    "run_scenario",
    "scenario_pack",
    "schedule_relation",
    "trip_database",
    "weekly",
]
