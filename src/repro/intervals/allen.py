"""Allen's thirteen interval relations as restricted constraints.

The paper motivates its two-temporal-attribute relations with interval
reasoning (Section 1 cites Allen's interval theory; footnote 3 notes
that pairs of points and intervals coincide under suitable choices).
This module expresses each of Allen's relations between two intervals
``(s1, e1)`` and ``(s2, e2)`` as a conjunction of restricted atoms, so
that interval queries compile directly onto the generalized algebra.

Intervals here are *proper*: ``start < end``.  The constraint templates
assume nothing about the inputs; combine with :func:`proper` if needed.
"""

from __future__ import annotations

from repro.core import algebra
from repro.core.constraints import Atom, parse_atoms
from repro.core.relations import GeneralizedRelation
from repro.core.errors import ReproValueError

#: The thirteen Allen relations, as constraint templates over the
#: placeholder attribute names s1/e1 (first interval) and s2/e2 (second).
ALLEN_TEMPLATES: dict[str, str] = {
    "before": "e1 < s2",
    "after": "s1 > e2",
    "meets": "e1 = s2",
    "met_by": "s1 = e2",
    "overlaps": "s1 < s2 & s2 < e1 & e1 < e2",
    "overlapped_by": "s2 < s1 & s1 < e2 & e2 < e1",
    "during": "s2 < s1 & e1 < e2",
    "contains": "s1 < s2 & e2 < e1",
    "starts": "s1 = s2 & e1 < e2",
    "started_by": "s1 = s2 & e2 < e1",
    "finishes": "e1 = e2 & s2 < s1",
    "finished_by": "e1 = e2 & s1 < s2",
    "equals": "s1 = s2 & e1 = e2",
}

#: Inverse pairs: interval A rel B  iff  B inverse(rel) A.
ALLEN_INVERSES: dict[str, str] = {
    "before": "after",
    "after": "before",
    "meets": "met_by",
    "met_by": "meets",
    "overlaps": "overlapped_by",
    "overlapped_by": "overlaps",
    "during": "contains",
    "contains": "during",
    "starts": "started_by",
    "started_by": "starts",
    "finishes": "finished_by",
    "finished_by": "finishes",
    "equals": "equals",
}


def allen_atoms(
    relation_name: str,
    first: tuple[str, str],
    second: tuple[str, str],
) -> list[Atom]:
    """Constraint atoms stating ``first <relation_name> second``.

    ``first`` and ``second`` are (start, end) attribute-name pairs.
    """
    template = ALLEN_TEMPLATES.get(relation_name)
    if template is None:
        raise KeyError(
            f"unknown Allen relation {relation_name!r}; "
            f"choose from {sorted(ALLEN_TEMPLATES)}"
        )
    s1, e1 = first
    s2, e2 = second
    rendered = (
        template.replace("s1", s1)
        .replace("e1", e1)
        .replace("s2", s2)
        .replace("e2", e2)
    )
    return parse_atoms(rendered)


def proper(interval: tuple[str, str]) -> list[Atom]:
    """Atoms stating the interval is proper (``start < end``)."""
    start, end = interval
    return parse_atoms(f"{start} < {end}")


def holds(relation_name: str, first: tuple[int, int], second: tuple[int, int]) -> bool:
    """Evaluate an Allen relation on two concrete intervals."""
    template = ALLEN_TEMPLATES.get(relation_name)
    if template is None:
        raise KeyError(f"unknown Allen relation {relation_name!r}")
    s1, e1 = first
    s2, e2 = second
    env = {"s1": s1, "e1": e1, "s2": s2, "e2": e2}
    clauses = template.split("&")
    for clause in clauses:
        clause = clause.strip()
        for op in ("<=", ">=", "=", "<", ">"):
            if op in clause:
                left, right = clause.split(op)
                lv, rv = env[left.strip()], env[right.strip()]
                ok = {
                    "<=": lv <= rv,
                    ">=": lv >= rv,
                    "=": lv == rv,
                    "<": lv < rv,
                    ">": lv > rv,
                }[op]
                if not ok:
                    return False
                break
    return True


def classify(first: tuple[int, int], second: tuple[int, int]) -> str:
    """The unique Allen relation between two proper concrete intervals."""
    if not (first[0] < first[1] and second[0] < second[1]):
        raise ReproValueError("classify expects proper intervals (start < end)")
    for name in ALLEN_TEMPLATES:
        if holds(name, first, second):
            return name
    raise AssertionError("Allen relations are exhaustive")  # pragma: no cover


def pairs_related(
    r1: GeneralizedRelation,
    r2: GeneralizedRelation,
    relation_name: str,
    first: tuple[str, str],
    second: tuple[str, str],
) -> GeneralizedRelation:
    """All pairs of intervals from ``r1`` × ``r2`` in the given relation.

    ``first`` names the (start, end) attributes of ``r1``; ``second``
    those of ``r2``.  Attribute names across the two relations must be
    disjoint (rename first if not).  The result is the cross product
    restricted by the Allen constraint — entirely symbolic, so it works
    on infinite (periodic) interval relations.
    """
    product = algebra.product(r1, r2)
    return algebra.select(product, allen_atoms(relation_name, first, second))
