"""Calendar scheduling scenarios for the optimizer (MINIMIZE/MAXIMIZE).

Each :class:`Scenario` bundles a self-contained database builder, one
optimization query, and a finite *oracle window*: the exact answer the
optimizer extracts from DBM closures can be cross-checked against
brute-force enumeration of the query result over that window
(:func:`oracle_optimum`).  The pack exercises the three shapes the
paper's scheduling examples call for:

* **meeting feasibility** — recurring availability windows encoded as
  anchor-plus-instant tuples (a periodic anchor lrp and a dense
  period-1 instant constrained relative to it);
* **recurring-resource contention** — two periodic busy patterns with
  incommensurate periods, asking for the earliest clash and the
  deepest overlap (a difference objective);
* **earliest completion over a temporal-graph view** — a two-leg
  itinerary materialized as a deductive view, minimized end to end.

Scenario databases are built fresh on every :meth:`Scenario.build`
call, so callers may mutate them freely.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.lrp import LRP
from repro.intervals.calendar import (
    RecurringTrip,
    daily,
    every,
    hourly,
    liege_brussels_schedule,
    schedule_relation,
)

#: The dense instant coordinate: every integer minute.
_ANY_MINUTE = LRP.make(0, 1)


@dataclass(frozen=True)
class Scenario:
    """One optimization scenario: a database, a query, and an oracle.

    ``query`` carries the ``MINIMIZE``/``MAXIMIZE`` directive, so
    ``scenario.build().query(scenario.query)`` returns the
    :class:`~repro.optimize.core.OptimizationResult` directly.
    ``window`` is a ``(low, high)`` epoch-minute range wide enough to
    contain the optimum's witness; :func:`oracle_optimum` enumerates
    the plain query result over it.  ``expected`` documents the known
    exact answer (``None`` for unbounded scenarios, where
    ``expect_unbounded`` is set instead).
    """

    name: str
    description: str
    query: str
    window: tuple[int, int]
    builder: Callable[[], "object"]
    expected: int | None = None
    expect_unbounded: bool = False

    def build(self):
        """A fresh :class:`~repro.query.database.Database`."""
        return self.builder()


# ----------------------------------------------------------------------
# scenario databases
# ----------------------------------------------------------------------


def _slot_relation(anchor: LRP, slack: int):
    """A feasibility relation ``(w, s)``: starts ``s`` inside a window.

    ``w`` ranges over the recurring window anchors; ``s`` is any minute
    with ``w <= s <= w + slack`` — the starts from which an event of
    the scenario's duration still fits inside the window.
    """
    from repro.core.relations import GeneralizedRelation, Schema

    rel = GeneralizedRelation.empty(Schema.make(temporal=["w", "s"]))
    rel.add_tuple([anchor, _ANY_MINUTE], f"s >= w & s <= w + {slack}")
    return rel


def meeting_database():
    """Two participants with recurring daily availability.

    Alice is free 09:00-11:30 daily, Bob 10:15-12:00 daily; the slot
    relations encode the starts from which a 45-minute meeting fits
    (slack = window length - 45).
    """
    from repro.query.database import Database

    db = Database()
    db.register("AliceSlot", _slot_relation(daily(9, 0), 150 - 45))
    db.register("BobSlot", _slot_relation(daily(10, 15), 105 - 45))
    return db


def _busy_relation(anchor: LRP, hold: int):
    """A busy relation ``(a, t)``: instants ``t`` inside each run.

    ``a`` anchors each recurring run; ``t`` is any minute with
    ``a <= t <= a + hold``.
    """
    from repro.core.relations import GeneralizedRelation, Schema

    rel = GeneralizedRelation.empty(Schema.make(temporal=["a", "t"]))
    rel.add_tuple([anchor, _ANY_MINUTE], f"t >= a & t <= a + {hold}")
    return rel


def contention_database():
    """Two recurring jobs sharing one machine, incommensurate periods.

    Job A holds the machine for 20 minutes starting every hour at :10;
    job B holds it for 15 minutes every 45 minutes starting at minute
    32.  With gcd(60, 45) = 15 the clash pattern repeats only every
    180 minutes, so the earliest clash is not visible in either job's
    own period.
    """
    from repro.query.database import Database

    db = Database()
    db.register("BusyA", _busy_relation(hourly(10), 20))
    db.register("BusyB", _busy_relation(every(45, 32), 15))
    return db


def trip_database():
    """The paper's hourly Liège-Brussels schedule, as ``Train``."""
    from repro.query.database import Database

    db = Database()
    db.register("Train", liege_brussels_schedule())
    return db


#: Deductive program composing two legs into an itinerary view: the
#: temporal-graph edge set is the legs, and ``Itinerary`` is the
#: two-hop reachability with a 10-minute minimum connection time.
ITINERARY_PROGRAM = (
    "declare Itinerary(d:T, p:T)\n"
    "Itinerary(d, p) <- EXISTS a. EXISTS x. EXISTS b. EXISTS y. "
    "(Leg1(d, a, x) & Leg2(b, p, y) & b >= a + 10)\n"
)


def itinerary_database():
    """A two-leg journey materialized as a deductive view.

    ``Leg1`` is the hourly Liège-Brussels schedule; ``Leg2`` runs
    Brussels-Paris hourly at :05 taking 85 minutes.  The installed
    ``Itinerary(d, p)`` view pairs a leg-1 departure ``d`` with every
    leg-2 arrival ``p`` reachable with at least 10 minutes to connect.
    """
    from repro.deductive.program import Program
    from repro.query.database import Database

    db = Database()
    db.register("Leg1", liege_brussels_schedule())
    db.register(
        "Leg2",
        schedule_relation([RecurringTrip(hourly(5), 85, "thalys")]),
    )
    db.install_program(Program.from_text(ITINERARY_PROGRAM))
    return db


# ----------------------------------------------------------------------
# the pack
# ----------------------------------------------------------------------


def scenario_pack() -> tuple[Scenario, ...]:
    """The scheduling scenario pack, in presentation order."""
    return (
        Scenario(
            name="earliest-meeting",
            description=(
                "Earliest start of a 45-minute meeting both Alice "
                "(09:00-11:30 daily) and Bob (10:15-12:00 daily) can "
                "attend, on or after the epoch."
            ),
            query=(
                "MINIMIZE s : EXISTS w. EXISTS b. "
                "AliceSlot(w, s) & BobSlot(b, s) & s >= 0"
            ),
            window=(0, 2880),
            builder=meeting_database,
            expected=615,  # 10:15 — Bob's window opens last
        ),
        Scenario(
            name="meeting-horizon-open",
            description=(
                "The latest such meeting start: unbounded, because the "
                "availability recurs daily forever."
            ),
            query=(
                "MAXIMIZE s : EXISTS w. EXISTS b. "
                "AliceSlot(w, s) & BobSlot(b, s) & s >= 0"
            ),
            window=(0, 2880),
            builder=meeting_database,
            expect_unbounded=True,
        ),
        Scenario(
            name="earliest-contention",
            description=(
                "First instant after the epoch when both recurring "
                "jobs hold the shared machine (periods 60 and 45)."
            ),
            query=(
                "MINIMIZE t : EXISTS a. EXISTS b. "
                "BusyA(a, t) & BusyB(b, t) & t >= 0"
            ),
            window=(0, 720),
            builder=contention_database,
            expected=77,  # A's [70,90] run meets B's [77,92] run
        ),
        Scenario(
            name="contention-depth",
            description=(
                "How deep into job A's hold a clash can reach: the "
                "maximum of t - a over clashing instants t in A's run "
                "anchored at a."
            ),
            query=(
                "MAXIMIZE t - a : EXISTS b. "
                "BusyA(a, t) & BusyB(b, t) & t >= 0"
            ),
            window=(0, 720),
            builder=contention_database,
            expected=20,  # the clash at t = 90 ends A's a = 70 run
        ),
        Scenario(
            name="shortest-trip",
            description=(
                "Shortest scheduled Liège-Brussels travel time: the "
                "minimum of arr - dep over the Train schedule."
            ),
            query="MINIMIZE arr - dep : Train(dep, arr, s)",
            window=(0, 1440),
            builder=trip_database,
            expected=64,  # the express; the slow train takes 78
        ),
        Scenario(
            name="earliest-completion",
            description=(
                "Earliest Paris arrival leaving Liège at 08:00 or "
                "later, through the Itinerary temporal-graph view "
                "(10-minute minimum connection)."
            ),
            query="MINIMIZE p : Itinerary(d, p) & d >= 480",
            window=(0, 2880),
            builder=itinerary_database,
            expected=690,  # 11:30 — slow 08:02→09:20, connect 10:05→11:30
        ),
    )


# ----------------------------------------------------------------------
# oracle cross-check
# ----------------------------------------------------------------------


def oracle_optimum(scenario: Scenario, db=None) -> int | None:
    """Brute-force the scenario's optimum over its finite window.

    Strips the directive, evaluates the plain query, enumerates every
    concrete point of the result with all temporal values inside
    ``scenario.window``, and takes the min/max of the objective over
    them.  Returns ``None`` when the window holds no point, and for
    ``expect_unbounded`` scenarios (a finite window cannot witness
    unboundedness — assert the optimizer's certificate instead).
    """
    from repro.optimize.objective import parse_objective
    from repro.query.parser import Directive, split_directive

    if scenario.expect_unbounded:
        return None
    directive, rest = split_directive(scenario.query)
    sense = "min" if directive is Directive.MINIMIZE else "max"
    objective, qtext = parse_objective(rest)
    if db is None:
        db = scenario.build()
    result = db.query(qtext)
    names = result.schema.names
    pos = names.index(objective.name)
    minus = names.index(objective.minus) if objective.minus else None
    best: int | None = None
    low, high = scenario.window
    for point in result.enumerate(low, high):
        value = point[pos] - (point[minus] if minus is not None else 0)
        if best is None:
            best = value
        elif sense == "min":
            best = min(best, value)
        else:
            best = max(best, value)
    return best


def run_scenario(scenario: Scenario):
    """Run the scenario's optimization query on a fresh database.

    Returns the :class:`~repro.optimize.core.OptimizationResult`; the
    query text carries the directive, so this is exactly
    ``scenario.build().query(scenario.query)``.
    """
    return scenario.build().query(scenario.query)
