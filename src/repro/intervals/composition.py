"""Allen relation composition, derived by the constraint engine itself.

The composition table — given ``A r1 B`` and ``B r2 C``, which relations
between ``A`` and ``C`` are possible? — is the workhorse of qualitative
interval reasoning.  Instead of hard-coding Allen's 13×13 table, this
module *derives* each entry with the library's own machinery: the entry
``r ∈ compose(r1, r2)`` holds iff the constraint system

    proper(A) ∧ proper(B) ∧ proper(C) ∧ r1(A, B) ∧ r2(B, C) ∧ r(A, C)

is satisfiable over Z — a single emptiness check on a six-attribute
generalized relation (Theorem 3.5).  The table is thus correct by
construction relative to the algebra, and the test suite cross-checks
it against brute-force enumeration of small concrete intervals.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.intervals.allen import ALLEN_TEMPLATES, allen_atoms, proper

_SCHEMA6 = Schema.make(temporal=["as_", "ae", "bs", "be", "cs", "ce"])
_A = ("as_", "ae")
_B = ("bs", "be")
_C = ("cs", "ce")


def _consistent(r1: str, r2: str, r3: str) -> bool:
    """Whether A r1 B, B r2 C, A r3 C admit proper integer intervals."""
    rel = GeneralizedRelation.universe(_SCHEMA6)
    rel = algebra.select(rel, proper(_A) + proper(_B) + proper(_C))
    rel = algebra.select(rel, allen_atoms(r1, _A, _B))
    rel = algebra.select(rel, allen_atoms(r2, _B, _C))
    rel = algebra.select(rel, allen_atoms(r3, _A, _C))
    return not rel.is_empty()


@lru_cache(maxsize=None)
def compose(r1: str, r2: str) -> frozenset[str]:
    """The set of possible relations between A and C.

    Both arguments must be Allen relation names; raises
    :class:`KeyError` otherwise (via :func:`allen_atoms`).
    """
    if r1 not in ALLEN_TEMPLATES:
        raise KeyError(f"unknown Allen relation {r1!r}")
    if r2 not in ALLEN_TEMPLATES:
        raise KeyError(f"unknown Allen relation {r2!r}")
    return frozenset(
        r3 for r3 in ALLEN_TEMPLATES if _consistent(r1, r2, r3)
    )


@lru_cache(maxsize=None)
def composition_table() -> dict[tuple[str, str], frozenset[str]]:
    """The full 13×13 table, derived on first use and cached."""
    return {
        (r1, r2): compose(r1, r2)
        for r1 in ALLEN_TEMPLATES
        for r2 in ALLEN_TEMPLATES
    }


def feasible_relations(
    known: list[tuple[tuple[str, str], str, tuple[str, str]]],
    query: tuple[tuple[str, str], tuple[str, str]],
    intervals: list[tuple[str, str]],
) -> set[str]:
    """Path-free qualitative inference over a set of named intervals.

    ``known`` lists facts ``(interval, relation, interval)``; the result
    is the set of Allen relations between the queried interval pair that
    are consistent with all facts simultaneously — decided by one
    constraint network per candidate relation, not by (incomplete)
    composition-table propagation.
    """
    attr_names: list[str] = []
    for start, end in intervals:
        attr_names.extend([start, end])
    schema = Schema.make(temporal=attr_names)
    base = GeneralizedRelation.universe(schema)
    for interval in intervals:
        base = algebra.select(base, proper(interval))
    for first, relation_name, second in known:
        base = algebra.select(base, allen_atoms(relation_name, first, second))
    out: set[str] = set()
    for candidate in ALLEN_TEMPLATES:
        probe = algebra.select(
            base, allen_atoms(candidate, query[0], query[1])
        )
        if not probe.is_empty():
            out.add(candidate)
    return out
