"""Calendar helpers: periodic schedules as linear repeating points.

The paper's running examples are schedules — trains leaving every hour,
robots cycling through tasks.  This module provides the small amount of
clock arithmetic needed to build such relations comfortably: time is
measured in minutes from an arbitrary epoch (midnight of day 0), and
every recurrence becomes an lrp whose period is the recurrence interval.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.errors import ReproValueError

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR
MINUTES_PER_WEEK = 7 * MINUTES_PER_DAY


def at_time(hour: int, minute: int = 0, day: int = 0) -> int:
    """Minutes from the epoch for day ``day`` at ``hour:minute``."""
    if not 0 <= hour < 24:
        raise ReproValueError(f"hour out of range: {hour}")
    if not 0 <= minute < 60:
        raise ReproValueError(f"minute out of range: {minute}")
    return day * MINUTES_PER_DAY + hour * MINUTES_PER_HOUR + minute


def fmt_time(minutes: int) -> str:
    """Render an epoch-minute value as ``[d+N ]hh:mm`` (days only if nonzero)."""
    day, rest = divmod(minutes, MINUTES_PER_DAY)
    hour, minute = divmod(rest, MINUTES_PER_HOUR)
    core = f"{hour:02d}:{minute:02d}"
    return core if day == 0 else f"d{day:+d} {core}"


def hourly(minute: int) -> LRP:
    """Every hour at the given minute past the hour."""
    if not 0 <= minute < MINUTES_PER_HOUR:
        raise ReproValueError(f"minute out of range: {minute}")
    return LRP.make(minute, MINUTES_PER_HOUR)


def daily(hour: int, minute: int = 0) -> LRP:
    """Every day at ``hour:minute``."""
    return LRP.make(at_time(hour, minute), MINUTES_PER_DAY)


def weekly(weekday: int, hour: int, minute: int = 0) -> LRP:
    """Every week on ``weekday`` (0 = day 0 of the epoch) at ``hour:minute``."""
    if not 0 <= weekday < 7:
        raise ReproValueError(f"weekday out of range: {weekday}")
    return LRP.make(at_time(hour, minute, day=weekday), MINUTES_PER_WEEK)


def every(period: int, first: int = 0) -> LRP:
    """Every ``period`` minutes, starting from epoch-minute ``first``."""
    if period <= 0:
        raise ReproValueError("period must be positive")
    return LRP.make(first, period)


@dataclass(frozen=True)
class RecurringTrip:
    """One recurring scheduled trip: departs/arrives at fixed offsets.

    ``departure`` is an lrp of epoch minutes; ``duration`` is the travel
    time in minutes; ``label`` identifies the service.
    """

    departure: LRP
    duration: int
    label: str

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ReproValueError("trip duration must be positive")


def schedule_relation(
    trips: Sequence[RecurringTrip],
    departure_attr: str = "dep",
    arrival_attr: str = "arr",
    label_attr: str = "service",
) -> GeneralizedRelation:
    """Build a Train-style generalized relation from recurring trips.

    Each trip becomes one generalized tuple
    ``[dep-lrp, arr-lrp] ∧ dep = arr - duration`` — the exact shape of
    the paper's Example 2.4 hourly schedule, where the equality
    constraint is what prevents the "leaving at h+1:46, arriving at
    h+1:50" confusion of temporal-arity-1 encodings.
    """
    schema = Schema.make(
        temporal=[departure_attr, arrival_attr], data=[label_attr]
    )
    out = GeneralizedRelation.empty(schema)
    for trip in trips:
        arrival = LRP.make(
            trip.departure.offset + trip.duration,
            trip.departure.period,
        )
        out.add_tuple(
            [trip.departure, arrival],
            f"{departure_attr} = {arrival_attr} - {trip.duration}",
            [trip.label],
        )
    return out


def liege_brussels_schedule() -> GeneralizedRelation:
    """The paper's Example 2.4: the hourly Liège-Brussels schedule.

    Every hour h there is a slow train leaving at h:02 arriving h+1:20
    (78 minutes) and an express leaving at h:46 arriving h+1:50 (64
    minutes).
    """
    return schedule_relation(
        [
            RecurringTrip(hourly(2), 78, "slow"),
            RecurringTrip(hourly(46), 64, "express"),
        ]
    )
