"""A small interactive shell / batch interpreter for temporal databases.

Usage::

    python -m repro.cli                      # interactive REPL
    python -m repro.cli script.itql          # run a command file
    python -m repro.cli -c 'ask EXISTS t. P(t)' -c 'quit'
    python -m repro.cli trace script.itql --trace-json out.json
    python -m repro.cli fuzz --seed 0 --budget 500
    python -m repro.cli db init mydb         # create a durable database
    python -m repro.cli db open mydb         # shell bound to a durable db
    python -m repro.cli db compact mydb      # fold the WAL into a snapshot
    python -m repro.cli db info mydb         # recovery + catalog summary
    python -m repro.cli serve start mydb     # multi-client server (MVCC)
    python -m repro.cli deduce prog.dl --data facts.tdb
                                             # evaluate a Datalog program
    python -m repro.cli deduce prog.dl --db mydb --install
                                             # install materialized views

Commands:

    create NAME(attr:T, attr:D, ...)   declare an empty relation
    insert NAME [lrps] : constraints | data
                                       add one generalized tuple
    drop NAME                          remove a relation from the catalog
    commit                             durably persist the catalog
                                       (db-open sessions only)
    compact                            fold the WAL into a fresh snapshot
                                       (db-open sessions only)
    load FILE                          load relations from a text file
    save FILE [NAME ...]               write relations to a text file
    list                               show the catalog
    show NAME                          print a relation
    window NAME LO HI                  enumerate concrete points
    ask QUERY                          yes/no first-order query
    query QUERY                        open query; prints the result
                                       (EXPLAIN / EXPLAIN ANALYZE /
                                       MINIMIZE / MAXIMIZE prefixes work
                                       here too)
    minimize OBJ : QUERY               exact minimum of OBJ (a temporal
                                       variable or difference `a - b`)
                                       over the query's result
    maximize OBJ : QUERY               exact maximum, same objective forms
    explain QUERY                      show the algebraic evaluation plan
    plan QUERY                         show the logical plan without
                                       running it (rewrites included when
                                       the optimizer is on)
    trace QUERY                        EXPLAIN ANALYZE: run under the trace
                                       recorder, print a text flamegraph
    rules FILE                         run a Datalog program file; derived
                                       relations join the catalog
    next NAME.COLUMN AFTER             exact next event at/after AFTER
    prev NAME.COLUMN BEFORE            exact previous event at/before BEFORE
    perf                               show optimization-layer counters
    help                               this text
    quit                               leave

The query syntax is the library's two-sorted first-order language
(``EXISTS t. Train(t, a, "slow") & t >= 60``).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.errors import ReproError
from repro.core.relations import GeneralizedRelation
from repro.core.temporal import next_event, prev_event
from repro.query import Database
from repro.storage import textio

HELP_TEXT = __doc__.split("Commands:", 1)[1].rsplit("The query", 1)[0]


class Session:
    """One CLI session: a database plus command dispatch.

    With ``trace_all`` set (the ``trace`` subcommand), every ``ask`` /
    ``query`` command runs under the trace recorder, prints its
    flamegraph, and the collected traces accumulate in
    :attr:`traces` for ``--trace-json`` export.
    """

    def __init__(
        self, trace_all: bool = False, db: Database | None = None
    ) -> None:
        self.db = Database() if db is None else db
        self.done = False
        self.trace_all = trace_all
        self.traces: list[dict] = []

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the printable response."""
        line = line.strip()
        if not line or line.startswith("#"):
            return ""
        verb, _, rest = line.partition(" ")
        handler = getattr(self, f"_cmd_{verb.lower()}", None)
        if handler is None:
            return f"error: unknown command {verb!r} (try 'help')"
        try:
            return handler(rest.strip())
        except ReproError as exc:
            return f"error: {exc}"
        except (ValueError, KeyError, OSError) as exc:
            return f"error: {exc}"

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    def _cmd_help(self, _rest: str) -> str:
        return HELP_TEXT.strip()

    def _cmd_quit(self, _rest: str) -> str:
        self.done = True
        return "bye"

    def _cmd_exit(self, rest: str) -> str:
        return self._cmd_quit(rest)

    def _cmd_create(self, rest: str) -> str:
        name, schema = textio.parse_header("relation " + rest)
        self.db.register(name, GeneralizedRelation.empty(schema))
        return f"created {name}{schema}"

    def _cmd_insert(self, rest: str) -> str:
        name, _, tuple_text = rest.partition(" ")
        relation = self.db.relation(name)
        before = len(relation)
        textio.parse_tuple_line(relation, tuple_text.strip())
        added = len(relation) - before
        return f"inserted {added} tuple(s) into {name}" if added else (
            f"tuple already present in {name}"
        )

    def _cmd_drop(self, rest: str) -> str:
        name = rest.strip()
        if not name:
            return "error: usage: drop NAME"
        self.db.drop(name)
        return f"dropped {name}"

    def _cmd_commit(self, _rest: str) -> str:
        if not self.db.persistent:
            return "error: not a durable session (use 'repro db open PATH')"
        records = self.db.commit()
        return (
            f"committed {records} record(s)"
            if records
            else "nothing to commit"
        )

    def _cmd_compact(self, _rest: str) -> str:
        if not self.db.persistent:
            return "error: not a durable session (use 'repro db open PATH')"
        return f"compacted into {self.db.compact()}"

    def _cmd_load(self, rest: str) -> str:
        with open(rest) as handle:
            relations = textio.loads_all(handle.read())
        for name, relation in relations.items():
            self.db.register(name, relation)
        return f"loaded {', '.join(relations)} from {rest}"

    def _cmd_save(self, rest: str) -> str:
        parts = rest.split()
        if not parts:
            return "error: save needs a file name"
        path, names = parts[0], parts[1:] or list(self.db.names)
        payload = textio.dumps_all(
            {name: self.db.relation(name) for name in names}
        )
        with open(path, "w") as handle:
            handle.write(payload)
        return f"saved {', '.join(names)} to {path}"

    def _cmd_list(self, _rest: str) -> str:
        if not self.db.names:
            return "(no relations)"
        lines = []
        for name in self.db.names:
            relation = self.db.relation(name)
            lines.append(
                f"{name}{relation.schema} — {len(relation)} generalized "
                "tuple(s)"
            )
        return "\n".join(lines)

    def _cmd_show(self, rest: str) -> str:
        return textio.format_relation(self.db.relation(rest), rest).rstrip()

    def _cmd_window(self, rest: str) -> str:
        parts = rest.split()
        if len(parts) != 3:
            return "error: usage: window NAME LO HI"
        name, lo, hi = parts[0], int(parts[1]), int(parts[2])
        points = sorted(self.db.relation(name).enumerate(lo, hi))
        if not points:
            return "(no points in window)"
        shown = points[:50]
        lines = [", ".join(map(str, point)) for point in shown]
        if len(points) > len(shown):
            lines.append(f"... and {len(points) - len(shown)} more")
        return "\n".join(lines)

    def _cmd_ask(self, rest: str) -> str:
        if self.trace_all:
            trace = self._record_trace(rest)
            verdict = "false" if trace.result.is_empty() else "true"
            return verdict + "\n" + trace.flamegraph()
        return "true" if self.db.ask(rest) else "false"

    def _cmd_query(self, rest: str) -> str:
        from repro.optimize import OptimizationResult
        from repro.plan.report import PlanReport
        from repro.query.explain import PlanNode, QueryTrace

        if self.trace_all:
            trace = self._record_trace(rest)
            return self._format_result(trace.result) + "\n" + trace.flamegraph()
        result = self.db.query(rest)
        if isinstance(result, (PlanNode, PlanReport)):  # EXPLAIN prefix
            return str(result)
        if isinstance(result, QueryTrace):  # EXPLAIN ANALYZE prefix
            self.traces.append(result.to_dict())
            return self._format_result(result.result) + "\n" + result.flamegraph()
        if isinstance(result, OptimizationResult):  # MINIMIZE/MAXIMIZE
            return str(result)
        return self._format_result(result)

    def _cmd_minimize(self, rest: str) -> str:
        """``minimize OBJ : QUERY`` — exact minimum of a linear objective."""
        return str(self.db.optimize(rest, sense="min"))

    def _cmd_maximize(self, rest: str) -> str:
        """``maximize OBJ : QUERY`` — exact maximum of a linear objective."""
        return str(self.db.optimize(rest, sense="max"))

    def _format_result(self, result: GeneralizedRelation) -> str:
        header = f"result{result.schema}: {len(result)} generalized tuple(s)"
        body = "\n".join(f"  {t}" for t in result.tuples[:20])
        if len(result) > 20:
            body += f"\n  ... and {len(result) - 20} more"
        return header + ("\n" + body if body else "")

    def _record_trace(self, text: str):
        from repro.query.parser import Directive, split_directive

        directive, rest = split_directive(text)
        if directive in (Directive.MINIMIZE, Directive.MAXIMIZE):
            from repro.optimize import parse_objective
            from repro.query.explain import optimize_trace

            objective, qtext = parse_objective(rest)
            sense = "min" if directive is Directive.MINIMIZE else "max"
            trace = optimize_trace(self.db, qtext, objective, sense)
        else:
            trace = self.db.trace(rest)
        self.traces.append(trace.to_dict())
        return trace

    def _cmd_explain(self, rest: str) -> str:
        return str(self.db.explain(rest))

    def _cmd_plan(self, rest: str) -> str:
        """Show the logical plan (and rewrite deltas) without running it."""
        return str(self.db.plan(rest))

    def _cmd_trace(self, rest: str) -> str:
        """EXPLAIN ANALYZE one query; print result size + flamegraph."""
        from repro.perf.kernel import kernel_backend

        trace = self._record_trace(rest)
        result = trace.result
        return (
            f"result{result.schema}: {len(result)} generalized tuple(s) "
            f"[kernel={kernel_backend()}]\n"
            + trace.flamegraph()
        )

    def _cmd_rules(self, rest: str) -> str:
        """Run a Datalog program file against the current database."""
        from repro.deductive import Program

        with open(rest) as handle:
            program = Program.from_text(handle.read())
        result = program.evaluate(self.db)
        for name in program.idb_names:
            self.db.register(name, result.relation(name))
        sizes = ", ".join(
            f"{name} ({len(self.db.relation(name))} tuples)"
            for name in program.idb_names
        )
        return f"derived {sizes}"

    def _cmd_perf(self, _rest: str) -> str:
        """Show optimization-layer counters and cache statistics."""
        from repro.analysis.counters import perf_cache_stats, perf_counters
        from repro.perf.config import get_config
        from repro.perf.kernel import kernel_backend

        cfg = get_config()
        lines = [
            f"config: cache={'on' if cfg.cache_enabled else 'off'} "
            f"(size {cfg.cache_size}), "
            f"prefilter={'on' if cfg.prefilter_enabled else 'off'}, "
            f"incremental={'on' if cfg.incremental_enabled else 'off'}, "
            f"workers={cfg.workers}, "
            f"kernel={kernel_backend()}, "
            f"optimize={'on' if cfg.optimize else 'off'}, "
            f"engine={cfg.engine}"
        ]
        counts = perf_counters()
        if counts:
            lines.append(
                "counters: "
                + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            )
        for name, stats in sorted(perf_cache_stats().items()):
            lines.append(
                f"{name} cache: {stats['hits']} hits, "
                f"{stats['misses']} misses, {stats['evictions']} evictions, "
                f"{stats['size']}/{stats['maxsize']} entries"
            )
        return "\n".join(lines)

    def _cmd_next(self, rest: str) -> str:
        return self._next_prev(rest, forward=True)

    def _cmd_prev(self, rest: str) -> str:
        return self._next_prev(rest, forward=False)

    def _next_prev(self, rest: str, forward: bool) -> str:
        parts = rest.split()
        if len(parts) != 2 or "." not in parts[0]:
            which = "next" if forward else "prev"
            return f"error: usage: {which} NAME.COLUMN INSTANT"
        target, instant = parts[0], int(parts[1])
        name, _, column = target.partition(".")
        relation = self.db.relation(name)
        fn = next_event if forward else prev_event
        value = fn(relation, column, instant)
        return "(none)" if value is None else str(value)


def repl(session: Session, stream=None, out=None) -> None:
    """Read-eval-print loop over ``stream`` (default: stdin/stdout)."""
    stream = sys.stdin if stream is None else stream
    out = sys.stdout if out is None else out
    interactive = stream is sys.stdin and stream.isatty()
    while not session.done:
        if interactive:
            out.write("itql> ")
            out.flush()
        line = stream.readline()
        if not line:
            break
        response = session.execute(line)
        if response:
            out.write(response + "\n")


def _run_session(
    session: Session, script: str | None, commands: list[str]
) -> None:
    """Drive a session from -c commands, a script file, or the REPL."""
    if commands:
        for command in commands:
            response = session.execute(command)
            if response:
                print(response)
            if session.done:
                break
    elif script:
        with open(script) as handle:
            repl(session, stream=handle)
    else:
        repl(session)


def db_main(argv: list[str]) -> int:
    """The ``repro db`` subcommand: durable databases on disk.

    ``init`` creates an empty store, ``open`` runs the shell bound to
    one (``commit``/``compact`` become live commands), ``compact``
    folds the WAL into a fresh snapshot, and ``info`` prints the
    post-recovery catalog and storage summary.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli db",
        description="Durable temporal databases (WAL-backed, crash-safe)",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("init", "create an empty durable database"),
        ("open", "open the shell bound to a durable database"),
        ("compact", "fold the WAL into a fresh snapshot and truncate it"),
        ("info", "run recovery and print the catalog/storage summary"),
    ):
        action_parser = sub.add_parser(action, help=help_text)
        action_parser.add_argument("path", help="database directory")
        if action == "open":
            action_parser.add_argument(
                "script", nargs="?", help="command file to run (default: REPL)"
            )
            action_parser.add_argument(
                "-c",
                dest="commands",
                action="append",
                default=[],
                help="run one command (repeatable)",
            )
    args = parser.parse_args(argv)
    # Every action opens the store, and opening can fail in ways the
    # operator caused (missing root, torn manifest, another writer
    # holding the lock) — report those as one clean diagnostic line,
    # never a traceback.
    try:
        return _db_action(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1


def _db_action(args) -> int:
    """Run one parsed ``repro db`` action (may raise ``ReproError``)."""
    if args.action == "init":
        with Database.open(args.path) as db:
            print(f"initialized {args.path} ({len(db.names)} relations)")
        return 0
    if args.action == "compact":
        with Database.open(args.path, create=False) as db:
            print(f"compacted into {db.compact()}")
        return 0
    if args.action == "info":
        from repro.perf.kernel import kernel_backend

        with Database.open(args.path, create=False) as db:
            info = db.storage.info()
            print(f"database {info['root']} (format {info['format']})")
            print(f"kernel backend: {kernel_backend()}")
            print(
                f"snapshot: {info['snapshot'] or '(none)'} "
                f"@ lsn {info['snapshot_lsn']}, wal {info['wal_bytes']} bytes"
            )
            if not info["relations"]:
                print("(no relations)")
            for name, size in info["relations"].items():
                print(f"{name}: {size} generalized tuple(s)")
        return 0
    with Database.open(args.path) as db:
        session = Session(db=db)
        _run_session(session, args.script, args.commands)
    return 0


def deduce_main(argv: list[str]) -> int:
    """The ``repro deduce`` subcommand: Datalog programs end to end.

    Evaluates a program file against a database — a durable store
    (``--db PATH``), a relation text file (``--data FILE``), or an
    empty catalog — and prints the derived IDB relations.  With
    ``--install`` (durable databases only) the program's IDB is
    instead installed as materialized views, refreshed incrementally
    by every subsequent commit and streamed append.

    Operator errors — unstratifiable programs, IDB/EDB name clashes,
    unsafe rules, missing files — are reported as one clean
    ``error: ...`` line with exit status 1, never a traceback
    (matching the ``repro db`` convention).
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli deduce",
        description="Evaluate or install a Datalog program",
    )
    parser.add_argument("program", help="program file (declare + rules)")
    parser.add_argument(
        "--db", default=None, metavar="PATH", help="durable database root"
    )
    parser.add_argument(
        "--data",
        default=None,
        metavar="FILE",
        help="relation text file to load as the EDB",
    )
    parser.add_argument(
        "--install",
        action="store_true",
        help="install the program's IDB as materialized views "
        "(requires --db)",
    )
    parser.add_argument(
        "--strategy",
        default=None,
        choices=("seminaive", "naive"),
        help="fixpoint strategy (default: seminaive, or REPRO_SEMINAIVE)",
    )
    args = parser.parse_args(argv)
    if args.install and args.db is None:
        parser.error("--install requires --db PATH")
    try:
        return _deduce_action(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    except OSError as exc:
        print(f"error: {exc}")
        return 1


def _deduce_action(args) -> int:
    """Run one parsed ``repro deduce`` action (may raise ``ReproError``)."""
    from repro.deductive import Program

    with open(args.program) as handle:
        program = Program.from_text(handle.read())
    if args.db is not None:
        with Database.open(args.db, create=False) as db:
            if args.data is not None:
                with open(args.data) as handle:
                    for name, rel in textio.loads_all(handle.read()).items():
                        db.register(name, rel)
            if args.install:
                db.install_program(program)
                for name, watermark in sorted(db.views().items()):
                    size = len(db.relation(name))
                    print(
                        f"installed {name}: {size} generalized tuple(s), "
                        f"watermark v{watermark}"
                    )
                return 0
            result = program.evaluate(db, strategy=args.strategy)
            _print_derived(program, result)
        return 0
    db = Database()
    if args.data is not None:
        with open(args.data) as handle:
            for name, rel in textio.loads_all(handle.read()).items():
                db.register(name, rel)
    result = program.evaluate(db, strategy=args.strategy)
    _print_derived(program, result)
    return 0


def _print_derived(program, result) -> None:
    for name in program.idb_names:
        print(textio.format_relation(result.relation(name), name).rstrip())


def main(argv: list[str] | None = None) -> int:
    """Entry point: interactive, script file, or -c commands.

    ``repro.cli trace ...`` is the observability subcommand: the same
    shell, but every ``ask``/``query`` runs under the trace recorder
    and prints its flamegraph; ``--trace-json out.json`` writes every
    collected span tree to a JSON file on exit.  ``repro.cli fuzz ...``
    runs the differential fuzzer (:mod:`repro.fuzz.cli`),
    ``repro.cli db ...`` manages durable on-disk databases
    (:func:`db_main`), and ``repro.cli serve ...`` runs the concurrent
    multi-client server (:mod:`repro.serve.cli`).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "db":
        return db_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "deduce":
        return deduce_main(argv[1:])
    trace_mode = bool(argv) and argv[0] == "trace"
    if trace_mode:
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="repro.cli trace" if trace_mode else "repro.cli",
        description="Infinite temporal database shell",
    )
    parser.add_argument(
        "script", nargs="?", help="command file to run (default: REPL)"
    )
    parser.add_argument(
        "-c",
        dest="commands",
        action="append",
        default=[],
        help="run one command (repeatable)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan pairwise algebra operations out to N worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the interning caches of the optimization layer",
    )
    parser.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="execution engine queries run on (default: native, or "
        "REPRO_ENGINE)",
    )
    parser.add_argument(
        "--optimize",
        dest="optimize",
        action="store_true",
        default=None,
        help="run the logical-plan rewrite passes before executing "
        "queries (default: REPRO_OPTIMIZE)",
    )
    parser.add_argument(
        "--no-optimize",
        dest="optimize",
        action="store_false",
        help="force the naive plan even if REPRO_OPTIMIZE is set",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write every collected trace (span tree) to PATH as JSON; "
        "implies trace mode",
    )
    args = parser.parse_args(argv)
    trace_mode = trace_mode or args.trace_json is not None
    if (
        args.workers is not None
        or args.no_cache
        or args.engine is not None
        or args.optimize is not None
    ):
        from repro.perf.config import configure

        changes: dict = {}
        if args.workers is not None:
            changes["workers"] = max(0, args.workers)
        if args.no_cache:
            changes["cache_enabled"] = False
        if args.engine is not None:
            from repro.plan.engine import get_engine

            get_engine(args.engine)  # fail fast on unknown names
            changes["engine"] = args.engine
        if args.optimize is not None:
            changes["optimize"] = args.optimize
        configure(**changes)
    session = Session(trace_all=trace_mode)
    try:
        _run_session(session, args.script, args.commands)
    finally:
        if args.trace_json:
            import json

            with open(args.trace_json, "w") as handle:
                json.dump({"traces": session.traces}, handle, indent=2,
                          default=repr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
