"""The classical finite baseline: materialized tuples up to a horizon.

Section 1 of the paper argues against finite materialization: "it is
preferable to state that something happens every year forever than to
state that it happens in 1989, 1990, 1991, ... 2090".  This module is
that strawman, built honestly: a conventional relational engine over
explicitly stored tuples, produced by truncating an infinite relation to
a time horizon.  The benchmarks compare its storage and query costs
against the generalized (symbolic) representation as the horizon grows;
the generalized side is horizon-independent.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Hashable, Iterable, Sequence

from repro.core.relations import GeneralizedRelation, Schema
from repro.core.errors import ReproValueError


class FiniteRelation:
    """A plain in-memory relation: a set of concrete schema-order tuples."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self.rows: set[tuple] = set()
        for row in rows:
            self.add(row)

    @classmethod
    def materialize(
        cls,
        relation: GeneralizedRelation,
        low: int,
        high: int,
    ) -> FiniteRelation:
        """Truncate a generalized relation to the horizon ``[low, high]``.

        This is exactly the "1989 ... 2090" encoding: every concrete
        point with temporal coordinates inside the horizon becomes one
        stored row.  An inverted horizon (``low > high``) denotes the
        empty window and produces the empty relation — the library-wide
        convention (see :meth:`GeneralizedRelation.enumerate
        <repro.core.relations.GeneralizedRelation.enumerate>`).
        """
        return cls(relation.schema, relation.enumerate(low, high))

    def add(self, row: Sequence) -> None:
        """Insert one concrete row (arity-checked)."""
        row = tuple(row)
        if len(row) != len(self.schema):
            raise ReproValueError(
                f"row has {len(row)} fields, schema has {len(self.schema)}"
            )
        self.rows.add(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def contains(self, row: Sequence) -> bool:
        """Membership test."""
        return tuple(row) in self.rows

    # ------------------------------------------------------------------
    # classical algebra
    # ------------------------------------------------------------------

    def union(self, other: FiniteRelation) -> FiniteRelation:
        """Set union."""
        self._check(other)
        return FiniteRelation(self.schema, self.rows | other.rows)

    def intersect(self, other: FiniteRelation) -> FiniteRelation:
        """Set intersection."""
        self._check(other)
        return FiniteRelation(self.schema, self.rows & other.rows)

    def subtract(self, other: FiniteRelation) -> FiniteRelation:
        """Set difference."""
        self._check(other)
        return FiniteRelation(self.schema, self.rows - other.rows)

    def select(self, predicate: Callable[[tuple], bool]) -> FiniteRelation:
        """Selection by an arbitrary row predicate."""
        return FiniteRelation(
            self.schema, (row for row in self.rows if predicate(row))
        )

    def project(self, names: Sequence[str]) -> FiniteRelation:
        """Projection onto named attributes (order taken from ``names``)."""
        indices = [self.schema.names.index(name) for name in names]
        new_schema = Schema(
            tuple(self.schema.attribute(name) for name in names)
        )
        return FiniteRelation(
            new_schema,
            (tuple(row[i] for i in indices) for row in self.rows),
        )

    def product(self, other: FiniteRelation) -> FiniteRelation:
        """Cross product (attribute names must be disjoint)."""
        overlap = set(self.schema.names) & set(other.schema.names)
        if overlap:
            raise ReproValueError(f"shared attribute names: {sorted(overlap)}")
        new_schema = Schema(self.schema.attributes + other.schema.attributes)
        return FiniteRelation(
            new_schema,
            (
                a + b
                for a, b in itertools.product(self.rows, other.rows)
            ),
        )

    def join(self, other: FiniteRelation) -> FiniteRelation:
        """Natural hash join on shared attribute names."""
        shared = [n for n in self.schema.names if n in set(other.schema.names)]
        my_idx = [self.schema.names.index(n) for n in shared]
        their_idx = [other.schema.names.index(n) for n in shared]
        their_rest_idx = [
            i
            for i, n in enumerate(other.schema.names)
            if n not in set(shared)
        ]
        new_schema = Schema(
            self.schema.attributes
            + tuple(other.schema.attributes[i] for i in their_rest_idx)
        )
        index: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in their_idx)
            index.setdefault(key, []).append(row)
        out = FiniteRelation(new_schema)
        for row in self.rows:
            key = tuple(row[i] for i in my_idx)
            for match in index.get(key, ()):
                out.add(row + tuple(match[i] for i in their_rest_idx))
        return out

    def complement(self, domains: dict[str, Sequence[Hashable]]) -> FiniteRelation:
        """Complement w.r.t. explicit finite domains per attribute.

        The finite engine cannot complement against Z — the defining
        limitation the paper's symbolic representation removes.
        """
        for name in self.schema.names:
            if name not in domains:
                raise ReproValueError(f"no domain for attribute {name!r}")
        axes = [list(domains[name]) for name in self.schema.names]
        universe = set(itertools.product(*axes))
        return FiniteRelation(self.schema, universe - self.rows)

    def storage_cells(self) -> int:
        """Total stored field count — the memory-footprint proxy."""
        return len(self.rows) * len(self.schema)

    def _check(self, other: FiniteRelation) -> None:
        if self.schema != other.schema:
            raise ReproValueError("schemas differ")
