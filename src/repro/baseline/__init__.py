"""Finite-horizon baseline engine (the paper's Section 1 strawman)."""

from repro.baseline.finite import FiniteRelation

__all__ = ["FiniteRelation"]
