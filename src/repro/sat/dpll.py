"""A DPLL SAT solver: the reference decision procedure.

Used to cross-check the Theorem 3.6 reduction: the generalized-database
route (nonemptiness of complement) must agree with a conventional SAT
solver on every instance.
"""

from __future__ import annotations

from repro.sat.threesat import Instance


def solve(instance: Instance) -> dict[int, bool] | None:
    """Return a satisfying assignment or ``None``.

    Plain DPLL with unit propagation and pure-literal elimination;
    branching picks the most frequent unassigned variable.  Unassigned
    variables in a satisfying partial assignment are completed with
    ``False``.
    """
    clauses = [list(c.literals) for c in instance.clauses]
    assignment: dict[int, bool] = {}
    result = _dpll(clauses, assignment)
    if result is None:
        return None
    return {v: result.get(v, False) for v in range(instance.n_vars)}


def _simplify(clauses, assignment):
    """Apply the assignment; return simplified clauses or None on conflict."""
    out = []
    for clause in clauses:
        satisfied = False
        remaining = []
        for lit in clause:
            value = assignment.get(lit.var)
            if value is None:
                remaining.append(lit)
            elif value == lit.positive:
                satisfied = True
                break
        if satisfied:
            continue
        if not remaining:
            return None
        out.append(remaining)
    return out


def _dpll(clauses, assignment):
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return assignment
    # Unit propagation.
    for clause in clauses:
        if len(clause) == 1:
            lit = clause[0]
            new_assignment = {**assignment, lit.var: lit.positive}
            return _dpll(clauses, new_assignment)
    # Pure literal elimination.
    polarity: dict[int, set[bool]] = {}
    for clause in clauses:
        for lit in clause:
            polarity.setdefault(lit.var, set()).add(lit.positive)
    for var, signs in polarity.items():
        if len(signs) == 1:
            return _dpll(clauses, {**assignment, var: next(iter(signs))})
    # Branch on the most frequent variable.
    counts: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            counts[lit.var] = counts.get(lit.var, 0) + 1
    var = max(counts, key=counts.get)
    for value in (True, False):
        result = _dpll(clauses, {**assignment, var: value})
        if result is not None:
            return result
    return None
