"""3-SAT substrate for Theorem 3.6 (NP-completeness of complement)."""

from repro.sat.dpll import solve
from repro.sat.reduction import (
    complement_is_nonempty,
    instance_to_relation,
    point_to_assignment,
    solve_via_complement,
)
from repro.sat.threesat import (
    Clause,
    Instance,
    Literal,
    clause,
    instance,
    random_3sat,
)

__all__ = [
    "Clause",
    "Instance",
    "Literal",
    "clause",
    "complement_is_nonempty",
    "instance",
    "instance_to_relation",
    "point_to_assignment",
    "random_3sat",
    "solve",
    "solve_via_complement",
]
