"""3-SAT instances: representation, generation, evaluation.

Theorem 3.6 proves NP-completeness of complement-nonemptiness by
reduction from 3-SAT; this module supplies the 3-SAT side — instance
data structures, a seeded random generator (used at the classic
hard-region clause/variable ratio in the benchmarks), and brute-force
evaluation for cross-checks.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from repro.core.errors import ReproValueError


@dataclass(frozen=True)
class Literal:
    """A literal: variable index (0-based) and polarity."""

    var: int
    positive: bool

    def negated(self) -> Literal:
        return Literal(self.var, not self.positive)

    def holds(self, assignment: Mapping[int, bool]) -> bool:
        return assignment[self.var] == self.positive

    def __str__(self) -> str:
        return f"x{self.var}" if self.positive else f"~x{self.var}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: tuple[Literal, ...]

    def holds(self, assignment: Mapping[int, bool]) -> bool:
        return any(lit.holds(assignment) for lit in self.literals)

    def variables(self) -> set[int]:
        return {lit.var for lit in self.literals}

    def __str__(self) -> str:
        return "(" + " | ".join(str(lit) for lit in self.literals) + ")"


@dataclass(frozen=True)
class Instance:
    """A CNF instance over variables ``0 .. n_vars - 1``."""

    n_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for lit in clause.literals:
                if not 0 <= lit.var < self.n_vars:
                    raise ReproValueError(
                        f"literal {lit} out of range for {self.n_vars} vars"
                    )

    def holds(self, assignment: Mapping[int, bool]) -> bool:
        return all(clause.holds(assignment) for clause in self.clauses)

    def brute_force_satisfiable(self) -> dict[int, bool] | None:
        """Exhaustive satisfiability check (for small cross-checks)."""
        for bits in itertools.product([False, True], repeat=self.n_vars):
            assignment = dict(enumerate(bits))
            if self.holds(assignment):
                return assignment
        return None

    def __str__(self) -> str:
        return " & ".join(str(c) for c in self.clauses) or "(empty)"


def clause(*literals: tuple[int, bool] | Literal) -> Clause:
    """Build a clause from ``(var, positive)`` pairs or literals."""
    out = tuple(
        lit if isinstance(lit, Literal) else Literal(*lit) for lit in literals
    )
    return Clause(out)


def instance(n_vars: int, clauses: Iterable[Clause]) -> Instance:
    """Build an instance."""
    return Instance(n_vars, tuple(clauses))


def random_3sat(
    n_vars: int,
    n_clauses: int,
    seed: int = 0,
) -> Instance:
    """A uniform random 3-SAT instance.

    Each clause picks three distinct variables and independent random
    polarities.  At ``n_clauses / n_vars ≈ 4.26`` this is the classic
    hard region used in the NP-completeness benchmark.
    """
    if n_vars < 3:
        raise ReproValueError("random 3-SAT needs at least 3 variables")
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(n_vars), 3)
        clauses.append(
            Clause(
                tuple(Literal(v, rng.random() < 0.5) for v in variables)
            )
        )
    return Instance(n_vars, tuple(clauses))
