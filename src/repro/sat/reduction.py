"""The Theorem 3.6 reduction: 3-SAT to nonemptiness of complement.

Given an instance with variables ``u_1 .. u_m`` and clauses
``c_1 .. c_l``, build a generalized relation ``r`` with one temporal
column per variable and one generalized tuple per clause, whose free
extension is ``[n_1, ..., n_m]`` (all of Z on every axis) and whose
constraints are, per the paper::

    u_i ∈ c    ↦   X_i < 0
    ¬u_i ∈ c   ↦   X_i >= 0

A point avoids clause ``c``'s tuple exactly when some literal of ``c``
is "made true" under the reading ``u_i  ⇔  X_i >= 0``; hence a point of
``¬r`` is precisely a satisfying assignment, and *nonemptiness of the
complement* decides satisfiability.
"""

from __future__ import annotations

from repro.core import algebra
from repro.core.emptiness import relation_witness
from repro.core.relations import GeneralizedRelation, Schema
from repro.sat.threesat import Instance


def instance_to_relation(instance: Instance) -> GeneralizedRelation:
    """Build the paper's relation ``r`` for a CNF instance."""
    names = [f"X{i}" for i in range(instance.n_vars)]
    relation = GeneralizedRelation.empty(Schema.make(temporal=names))
    for clause in instance.clauses:
        constraints = []
        for lit in clause.literals:
            if lit.positive:
                constraints.append(f"X{lit.var} < 0")
            else:
                constraints.append(f"X{lit.var} >= 0")
        relation.add_tuple(["n"] * instance.n_vars, " & ".join(constraints))
    return relation


def point_to_assignment(point: tuple[int, ...]) -> dict[int, bool]:
    """Decode a complement witness into a truth assignment."""
    return {i: value >= 0 for i, value in enumerate(point)}


def solve_via_complement(
    instance: Instance,
    max_extensions: int = 10_000_000,
) -> dict[int, bool] | None:
    """Decide satisfiability through the generalized database.

    Builds ``r``, complements it (the exponential step — Theorem 3.6
    says this cannot be avoided in general unless P = NP), and extracts
    a witness point if one exists.
    """
    relation = instance_to_relation(instance)
    if len(relation) == 0:
        # No clauses: everything satisfies; all-false will do.
        return {i: False for i in range(instance.n_vars)}
    complement = algebra.complement(relation, max_extensions=max_extensions)
    witness = relation_witness(complement)
    if witness is None:
        return None
    assignment = point_to_assignment(tuple(witness))
    assert instance.holds(assignment)
    return assignment


def complement_is_nonempty(instance: Instance) -> bool:
    """The bare decision problem of Theorem 3.6."""
    return solve_via_complement(instance) is not None
