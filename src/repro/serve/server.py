"""The asyncio server: MVCC snapshot reads + group-committed writes.

:class:`ReproServer` serves one
:class:`~repro.query.catalog.VersionedCatalog` to many concurrent TCP
clients over the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`.  The concurrency story:

* **reads never block** — every ``query``/``ask``/``relation`` request
  resolves a :class:`~repro.query.catalog.CatalogVersion` (the
  connection's pinned snapshot, or the latest committed version: one
  lock-free pointer read) and evaluates it on a thread pool.  An
  in-flight commit is invisible to running reads and running reads
  never delay the commit;
* **writes group-commit** — every ``commit`` request enqueues its
  transaction with the :class:`GroupCommitBatcher`.  A single drainer
  collects whatever transactions are in flight, applies them in
  arrival order through
  :meth:`~repro.query.catalog.VersionedCatalog.commit_mutations`
  (one WAL append run + **one** fsync for the whole group) and acks
  each client only after the fsync.  A transaction that fails to
  apply aborts alone; the rest of its group still commits.

The server emits ``serve.*`` metrics (connections gauge, request
counter + latency histogram, per-group batch-size histogram, error
counter) into the global registry and wraps every request in a
``serve.request`` span when tracing is enabled.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.core.errors import ReproError, ServeError
from repro.core.negation import DEFAULT_MAX_EXTENSIONS
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.obs import metrics, span
from repro.query.catalog import (
    CatalogVersion,
    Snapshot,
    TxnResult,
    VersionedCatalog,
)
from repro.serve import protocol
from repro.storage import jsonio

#: Default bind address — serving is loopback-only unless overridden.
DEFAULT_HOST = "127.0.0.1"


class GroupCommitBatcher:
    """Funnel concurrent transactions into single-fsync commit groups.

    Clients :meth:`submit` a transaction (one mutation list) and await
    its :class:`~repro.query.catalog.TxnResult`.  One drainer task
    pulls the first waiting transaction, then greedily drains every
    other transaction already queued — everything that arrived while
    the previous group was fsyncing — and commits them as one group on
    a dedicated single-thread executor.  Group size therefore adapts
    to load: idle servers commit singletons immediately, loaded
    servers amortize one fsync over many writers.
    """

    def __init__(
        self, catalog: VersionedCatalog, executor: ThreadPoolExecutor
    ) -> None:
        self._catalog = catalog
        self._executor = executor
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        """Spawn the drainer task on the running event loop."""
        self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Cancel the drainer; already-submitted groups are abandoned."""
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    async def submit(self, mutations: list[dict]) -> TxnResult:
        """Enqueue one transaction; resolves after its group's fsync."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((list(mutations), future))
        return await future

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        registry = metrics()
        while True:
            group = [await self._queue.get()]
            while not self._queue.empty():
                group.append(self._queue.get_nowait())
            batches = [mutations for mutations, _future in group]
            started = time.perf_counter()
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    self._catalog.commit_mutations,
                    batches,
                )
            except Exception as exc:  # engine crash / storage failure
                for _mutations, future in group:
                    if not future.done():
                        future.set_exception(exc)
                continue
            registry.histogram("serve.commit.batch_txns").observe(len(group))
            registry.histogram("serve.commit.seconds").observe(
                time.perf_counter() - started
            )
            registry.counter("serve.commits").inc(len(group))
            for (_mutations, future), result in zip(group, results):
                if not future.done():
                    future.set_result(result)


class ReproServer:
    """A multi-client temporal-database server over one catalog.

    Construct over an existing :class:`~repro.query.catalog.
    VersionedCatalog` (or none, for an ephemeral in-memory catalog),
    or use :meth:`ReproServer.open` to open a durable store directly.
    ``port=0`` (the default) binds an ephemeral port — read
    :attr:`port` after :meth:`start`.

    Lifecycle: ``await start()`` binds and begins accepting;
    ``await stop()`` closes connections and (when the server opened
    the store itself) the engine.  :meth:`run_forever` is the
    blocking-coroutine form the CLI uses; :meth:`start_in_thread` /
    :meth:`stop_in_thread` run the whole loop on a daemon thread for
    tests, benchmarks and embedding.
    """

    def __init__(
        self,
        catalog: VersionedCatalog | None = None,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        max_tuples: int = DEFAULT_MAX_TUPLES,
        max_extensions: int = DEFAULT_MAX_EXTENSIONS,
        query_workers: int = 4,
    ) -> None:
        self._catalog = catalog if catalog is not None else VersionedCatalog()
        self.host = host
        self._requested_port = port
        self.max_tuples = max_tuples
        self.max_extensions = max_extensions
        self._query_workers = max(1, query_workers)
        self._owns_engine = False
        self._server: asyncio.AbstractServer | None = None
        self._batcher: GroupCommitBatcher | None = None
        self._query_pool: ThreadPoolExecutor | None = None
        self._commit_pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @classmethod
    def open(
        cls,
        path: str,
        *,
        create: bool = True,
        host: str = DEFAULT_HOST,
        port: int = 0,
        max_tuples: int = DEFAULT_MAX_TUPLES,
        max_extensions: int = DEFAULT_MAX_EXTENSIONS,
        query_workers: int = 4,
    ) -> ReproServer:
        """Open the durable store at ``path`` and serve it.

        Takes the store's exclusive single-writer lock (so a second
        server — or any other :class:`~repro.storage.engine.
        StorageEngine` — on the same root fails with
        :class:`~repro.core.errors.StorageError`); the served catalog
        starts at the recovered committed state.  The engine is owned
        by the server and closed by :meth:`stop`.
        """
        from repro.storage.engine import StorageEngine

        engine = StorageEngine.open(path, create=create)
        catalog = VersionedCatalog(engine=engine, base=engine.relations)
        server = cls(
            catalog,
            host=host,
            port=port,
            max_tuples=max_tuples,
            max_extensions=max_extensions,
            query_workers=query_workers,
        )
        server._owns_engine = True
        return server

    @classmethod
    def for_database(
        cls,
        db,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        query_workers: int = 4,
    ) -> ReproServer:
        """Serve an already-open :class:`~repro.query.database.Database`.

        The server shares the database's transactional core, so served
        commits and in-process snapshots observe one version history.
        The caller keeps ownership of the database (and closes it).
        """
        return cls(
            db._core,
            host=host,
            port=port,
            max_tuples=db.max_tuples,
            max_extensions=db.max_extensions,
            query_workers=query_workers,
        )

    @property
    def catalog(self) -> VersionedCatalog:
        """The served transactional core."""
        return self._catalog

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the commit drainer."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._query_pool = ThreadPoolExecutor(
            max_workers=self._query_workers,
            thread_name_prefix="serve-query",
        )
        self._commit_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-commit"
        )
        self._batcher = GroupCommitBatcher(self._catalog, self._commit_pool)
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle,
            self.host,
            self._requested_port,
            limit=protocol.MAX_FRAME_BYTES,
        )

    async def stop(self) -> None:
        """Stop accepting, drain workers, release the store (if owned)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.stop()
            self._batcher = None
        for pool in (self._query_pool, self._commit_pool):
            if pool is not None:
                pool.shutdown(wait=True)
        self._query_pool = None
        self._commit_pool = None
        engine = self._catalog.engine
        if self._owns_engine and engine is not None:
            engine.close()

    async def run_forever(self) -> None:
        """Start, then serve until :meth:`request_stop` (or cancel)."""
        await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    def request_stop(self) -> None:
        """Ask a running :meth:`run_forever` loop to shut down.

        Thread-safe: callable from signal handlers and other threads.
        """
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    def start_in_thread(self) -> ReproServer:
        """Run the server's event loop on a daemon thread.

        Blocks until the listening socket is bound (or raises the
        startup failure).  Pair with :meth:`stop_in_thread`.
        """
        ready = threading.Event()
        failures: list[BaseException] = []

        def runner() -> None:
            async def main() -> None:
                try:
                    await self.start()
                except BaseException as exc:  # surface to caller
                    failures.append(exc)
                    ready.set()
                    return
                ready.set()
                try:
                    await self._stop_event.wait()
                finally:
                    await self.stop()

            asyncio.run(main())

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise ServeError("server did not start within 30s")
        if failures:
            self._thread.join(timeout=10)
            self._thread = None
            raise failures[0]
        return self

    def stop_in_thread(self) -> None:
        """Shut down a :meth:`start_in_thread` server and join it."""
        if self._thread is None:
            return
        self.request_stop()
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> ReproServer:
        return self.start_in_thread()

    def __exit__(self, *exc_info) -> None:
        self.stop_in_thread()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = metrics()
        registry.gauge("serve.connections").inc()
        pinned: CatalogVersion | None = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_payload(
                                None, ServeError("frame too large")
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                started = time.perf_counter()
                request_id: Any = None
                try:
                    request = protocol.decode_frame(line)
                    request_id = request.get("id")
                    response, pinned = await self._dispatch(
                        request, request_id, pinned
                    )
                except ReproError as exc:
                    registry.counter("serve.errors").inc()
                    response = protocol.error_payload(request_id, exc)
                registry.counter("serve.requests").inc()
                registry.histogram("serve.request.seconds").observe(
                    time.perf_counter() - started
                )
                writer.write(protocol.encode_frame(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            registry.gauge("serve.connections").dec()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _view(self, pinned: CatalogVersion | None) -> CatalogVersion:
        """The version a read runs against: the pin, or the latest."""
        return pinned if pinned is not None else self._catalog.current()

    def _snapshot_of(self, version: CatalogVersion) -> Snapshot:
        return Snapshot(
            version,
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
        )

    async def _dispatch(
        self,
        request: dict[str, Any],
        request_id: Any,
        pinned: CatalogVersion | None,
    ) -> tuple[dict[str, Any], CatalogVersion | None]:
        op = request.get("op")
        if not isinstance(op, str):
            raise ServeError(f"malformed request: missing op in {request!r}")
        with span("serve.request", op=op):
            payload, pinned = await self._dispatch_op(request, op, pinned)
        payload["id"] = request_id
        payload["ok"] = True
        return payload, pinned

    async def _dispatch_op(
        self,
        request: dict[str, Any],
        op: str,
        pinned: CatalogVersion | None,
    ) -> tuple[dict[str, Any], CatalogVersion | None]:
        loop = asyncio.get_running_loop()
        if op == "ping":
            return {
                "pong": True,
                "version": self._catalog.version,
                "protocol": protocol.PROTOCOL_VERSION,
            }, pinned
        if op == "info":
            view = self._view(pinned)
            return {
                "version": view.version,
                "pinned": pinned is not None,
                "persistent": self._catalog.engine is not None,
                "relations": {
                    name: len(view.relation(name)) for name in view.names
                },
            }, pinned
        if op == "names":
            view = self._view(pinned)
            return {
                "version": view.version,
                "names": list(view.names),
            }, pinned
        if op == "snapshot":
            pinned = self._catalog.current()
            return {"version": pinned.version}, pinned
        if op == "release":
            pinned = None
            return {"version": self._catalog.version}, pinned
        if op == "relation":
            view = self._view(pinned)
            rel = view.relation(_field(request, "name", str))
            return {
                "version": view.version,
                "relation": jsonio.relation_to_dict(rel),
            }, pinned
        if op == "query":
            snap = self._snapshot_of(self._view(pinned))
            text = _field(request, "text", str)
            metrics().counter("serve.queries").inc()
            payload = await loop.run_in_executor(
                self._query_pool, _run_query, snap, text
            )
            return payload, pinned
        if op == "ask":
            snap = self._snapshot_of(self._view(pinned))
            text = _field(request, "text", str)
            metrics().counter("serve.queries").inc()
            answer = await loop.run_in_executor(
                self._query_pool, snap.ask, text
            )
            return {"version": snap.version, "answer": bool(answer)}, pinned
        if op == "commit":
            mutations = request.get("mutations")
            if not isinstance(mutations, list):
                raise ServeError(
                    "commit needs 'mutations': a list of mutation objects"
                )
            result = await self._batcher.submit(mutations)
            if result.error is not None:
                raise result.error
            return {
                "version": result.version,
                "records": result.records,
            }, pinned
        if op == "append":
            # Streaming ingest: one transaction of structural inserts.
            # Rides the group-commit batcher, so concurrent appenders
            # share one fsync *and* (with a program installed) view
            # refresh is amortized over every batch in the group.
            name = _field(request, "name", str)
            tuples = request.get("tuples")
            if not isinstance(tuples, list):
                raise ServeError(
                    "append needs 'tuples': a list of tuple entries"
                )
            mutations = [
                {"op": "insert", "name": name, "tuple": entry}
                for entry in tuples
            ]
            metrics().counter("serve.appends").inc()
            metrics().histogram("serve.append.tuples").observe(len(tuples))
            result = await self._batcher.submit(mutations)
            if result.error is not None:
                raise result.error
            return {
                "version": result.version,
                "records": result.records,
            }, pinned
        if op == "install_program":
            from repro.deductive import Program

            text = _field(request, "text", str)
            program = Program.from_text(text)
            verify = bool(request.get("verify", False))

            def install():
                return self._catalog.install_program(
                    program,
                    max_tuples=self.max_tuples,
                    max_extensions=self.max_extensions,
                    verify=verify,
                )

            # The commit pool serializes with the group-commit drainer's
            # executor thread, so installation never races a commit.
            version, report = await loop.run_in_executor(
                self._commit_pool, install
            )
            return {
                "version": version.version,
                "views": list(version.view_watermarks),
                "mode": report.mode if report is not None else "adopt",
            }, pinned
        if op == "views":
            view = self._view(pinned)
            return {
                "version": view.version,
                "views": dict(view.view_watermarks),
            }, pinned
        raise ServeError(f"unknown op {op!r}")


def _field(request: dict[str, Any], name: str, kind: type) -> Any:
    value = request.get(name)
    if not isinstance(value, kind):
        raise ServeError(
            f"op {request.get('op')!r} needs {name!r} of type "
            f"{kind.__name__}"
        )
    return value


def _run_query(snap: Snapshot, text: str) -> dict[str, Any]:
    """Worker-thread body for a ``query`` op: evaluate + serialize.

    A ``MINIMIZE``/``MAXIMIZE`` directive ships both faces of the
    answer: ``result`` holds the argopt restriction (a relation, like
    any other query) and ``optimum`` the scalar verdict — value,
    witness point, argopt provenance or unboundedness certificate
    (``docs/optimization.md``).
    """
    result = snap.query(text)
    from repro.optimize import OptimizationResult

    if isinstance(result, OptimizationResult):
        return {
            "version": snap.version,
            "result": jsonio.relation_to_dict(result.argopt_restriction()),
            "optimum": result.to_dict(),
        }
    return {
        "version": snap.version,
        "result": jsonio.relation_to_dict(result),
    }
