"""repro.serve — the concurrent serving layer.

A small asyncio TCP server (:class:`ReproServer`) puts one temporal
database in front of many concurrent clients:

* **MVCC snapshot reads** — each connection can pin an immutable
  committed catalog version and query it without ever blocking (or
  being torn by) writers;
* **group commit** — concurrent transactions are drained into commit
  groups made durable by one WAL append run and a single fsync
  (:class:`GroupCommitBatcher`).

The wire protocol is newline-delimited JSON
(:mod:`repro.serve.protocol`); :class:`SyncClient` /
:class:`Client` are the blocking and asyncio clients.  Start a server
from the command line with ``python -m repro.cli serve start PATH``
and benchmark it with ``python -m repro.serve.bench``.
"""

from repro.serve.client import Client, SyncClient
from repro.serve.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION
from repro.serve.server import GroupCommitBatcher, ReproServer

__all__ = [
    "Client",
    "GroupCommitBatcher",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ReproServer",
    "SyncClient",
]
