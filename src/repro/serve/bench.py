"""The serving-layer load generator: ``BENCH_serve.json``.

Usage::

    python -m repro.serve.bench                  # full run, repo defaults
    python -m repro.serve.bench --smoke          # small/fast variant
    python -m repro.serve.bench --out out.json

Starts a real server (daemon thread, ephemeral port, durable store in
a temp directory) and drives it over TCP with
:class:`~repro.serve.client.SyncClient` worker threads, measuring the
three claims the serving layer makes:

* **group commit beats sequential commit** — the same number of
  transactions committed by N concurrent writers (drained into
  single-fsync groups) versus one writer committing them one at a
  time.  Reported as commits/s for both modes plus the observed group
  sizes;
* **snapshot readers never block on writers** — a reader pins a
  snapshot and queries in a tight loop while a writer commits a large
  transaction; the reader's worst-case latency must stay far below
  the commit's duration (and the pinned snapshot must not see the
  commit: snapshot isolation is checked too);
* **the store is single-writer** — a second
  :class:`~repro.storage.engine.StorageEngine` on the served root
  must fail with :class:`~repro.core.errors.StorageError`.

Also measures served read throughput/latency (p50/p99 over N client
threads).  ``summary.ok`` gates all of the above, which is what CI's
serve-smoke job asserts.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import statistics
import sys
import tempfile
import threading
import time

from repro.core.errors import StorageError
from repro.obs import metrics
from repro.serve.client import SyncClient
from repro.serve.server import ReproServer


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _insert(offset: int, name: str = "Event") -> dict:
    return {
        "op": "insert",
        "name": name,
        "lrps": [f"{offset} + 100000n"],
        "constraints": "t >= 0",
        "data": [],
    }


def run_serve_bench(
    *,
    writers: int = 8,
    commits_per_writer: int = 6,
    query_clients: int = 4,
    queries_per_client: int = 30,
    bulk_tuples: int = 1200,
    smoke: bool = False,
) -> dict:
    """Run the full load-generation suite; returns the report dict."""
    if smoke:
        commits_per_writer = 2
        query_clients = 2
        queries_per_client = 8
        bulk_tuples = 300
    root = tempfile.mkdtemp(prefix="repro-serve-bench-")
    try:
        return _run(
            root + "/db",
            writers=writers,
            commits_per_writer=commits_per_writer,
            query_clients=query_clients,
            queries_per_client=queries_per_client,
            bulk_tuples=bulk_tuples,
            smoke=smoke,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _run(
    root: str,
    *,
    writers: int,
    commits_per_writer: int,
    query_clients: int,
    queries_per_client: int,
    bulk_tuples: int,
    smoke: bool,
) -> dict:
    server = ReproServer.open(root, query_workers=max(2, query_clients))
    server.start_in_thread()
    offsets = iter(range(10, 10_000_000))
    try:
        port = server.port

        # -- single-writer lock: a second engine on the served root fails
        from repro.storage.engine import StorageEngine

        try:
            StorageEngine.open(root)
            lock_ok = False
        except StorageError:
            lock_ok = True

        with SyncClient(port=port) as seed:
            seed.commit(
                [{"op": "create", "name": "Event", "temporal": ["t"]}]
                + [_insert(next(offsets)) for _ in range(8)]
                + [{"op": "create", "name": "Probe", "temporal": ["t"]}]
                + [_insert(next(offsets), "Probe") for _ in range(3)]
            )

        total_txns = writers * commits_per_writer

        # Each commit mode writes its own fresh relation so both phases
        # start from (and grow through) identical catalog shapes — the
        # comparison measures batching, not catalog size.
        with SyncClient(port=port) as seed:
            seed.commit([{"op": "create", "name": "Seq", "temporal": ["t"]}])
            seed.commit([{"op": "create", "name": "Grp", "temporal": ["t"]}])

        # -- sequential baseline: one client, total_txns commits in a row
        with SyncClient(port=port) as client:
            started = time.perf_counter()
            for _ in range(total_txns):
                client.commit([_insert(next(offsets), "Seq")])
            sequential_s = time.perf_counter() - started

        # -- group commit: `writers` concurrent clients, same txn count
        barrier = threading.Barrier(writers + 1)
        batch_before = metrics().histogram("serve.commit.batch_txns")
        groups_before = batch_before.count
        txns_before = batch_before.total

        def writer_main() -> None:
            with SyncClient(port=port) as c:
                barrier.wait()
                for _ in range(commits_per_writer):
                    c.commit([_insert(next(offsets), "Grp")])

        threads = [
            threading.Thread(target=writer_main, name=f"bench-writer-{i}")
            for i in range(writers)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        started = time.perf_counter()
        for t in threads:
            t.join()
        group_s = time.perf_counter() - started
        batch_after = metrics().histogram("serve.commit.batch_txns")
        groups = batch_after.count - groups_before
        grouped_txns = batch_after.total - txns_before

        # -- read throughput/latency at N concurrent query clients
        latencies: list[list[float]] = [[] for _ in range(query_clients)]

        def reader_main(slot: int) -> None:
            with SyncClient(port=port) as c:
                c.snapshot()
                for i in range(queries_per_client):
                    t0 = time.perf_counter()
                    c.ask(f"EXISTS t. Event(t) & t >= {i}")
                    latencies[slot].append(time.perf_counter() - t0)

        threads = [
            threading.Thread(target=reader_main, args=(i,))
            for i in range(query_clients)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        queries_s = time.perf_counter() - started
        flat = [x for slot in latencies for x in slot]

        # -- snapshot readers vs a slow writer: reads must not block.
        # Baseline first: the reader's idle latency on the tiny Probe
        # relation, to separate "slow query" from "blocked by writer".
        with SyncClient(port=port) as reader:
            baseline_lat = []
            for _ in range(20):
                t0 = time.perf_counter()
                reader.ask("EXISTS t. Probe(t) & t >= 5")
                baseline_lat.append(time.perf_counter() - t0)
        baseline_p50 = _percentile(baseline_lat, 0.5)

        stop = threading.Event()
        commit_s = [0.0]

        def bulk_writer() -> None:
            with SyncClient(port=port) as c:
                t0 = time.perf_counter()
                c.commit(
                    [{"op": "create", "name": "Bulk", "temporal": ["t"]}]
                    + [
                        _insert(next(offsets), "Bulk")
                        for _ in range(bulk_tuples)
                    ]
                )
                commit_s[0] = time.perf_counter() - t0
                stop.set()

        reader_lat: list[float] = []
        isolation_ok = True
        with SyncClient(port=port) as reader:
            pinned = reader.snapshot()
            wt = threading.Thread(target=bulk_writer)
            wt.start()
            while not stop.is_set():
                t0 = time.perf_counter()
                reader.ask("EXISTS t. Probe(t) & t >= 5")
                reader_lat.append(time.perf_counter() - t0)
            wt.join()
            # snapshot isolation: the pin must predate Bulk entirely
            isolation_ok = "Bulk" not in reader.names()
            reader.release()
            isolation_ok = isolation_ok and "Bulk" in reader.names()
            isolation_ok = isolation_ok and reader.ping()["version"] > pinned

        sequential_cps = total_txns / sequential_s if sequential_s else 0.0
        group_cps = total_txns / group_s if group_s else 0.0
        reader_max = max(reader_lat) if reader_lat else 0.0
        # "never blocks": a reader blocked on the writer would wait the
        # whole bulk commit out; an unblocked one stays within GIL
        # jitter of its idle latency, far under the commit's duration.
        nonblocking_ok = bool(reader_lat) and (
            reader_max < max(0.5 * commit_s[0], 10 * baseline_p50, 0.02)
        )

        report = {
            "meta": {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "smoke": smoke,
                "writers": writers,
                "commits_per_writer": commits_per_writer,
                "query_clients": query_clients,
                "queries_per_client": queries_per_client,
                "bulk_tuples": bulk_tuples,
            },
            "commits": {
                "txns": total_txns,
                "sequential_s": round(sequential_s, 6),
                "sequential_commits_per_s": round(sequential_cps, 1),
                "group_s": round(group_s, 6),
                "group_commits_per_s": round(group_cps, 1),
                "speedup": round(group_cps / sequential_cps, 2)
                if sequential_cps
                else None,
                "commit_groups": groups,
                "grouped_txns": grouped_txns,
                "mean_group_size": round(grouped_txns / groups, 2)
                if groups
                else None,
            },
            "queries": {
                "total": len(flat),
                "wall_s": round(queries_s, 6),
                "queries_per_s": round(len(flat) / queries_s, 1)
                if queries_s
                else None,
                "p50_ms": round(_percentile(flat, 0.5) * 1e3, 3),
                "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
                "mean_ms": round(statistics.mean(flat) * 1e3, 3)
                if flat
                else None,
            },
            "reader_vs_writer": {
                "bulk_commit_s": round(commit_s[0], 6),
                "reader_idle_p50_ms": round(baseline_p50 * 1e3, 3),
                "reader_reads": len(reader_lat),
                "reader_max_ms": round(reader_max * 1e3, 3),
                "reader_p50_ms": round(
                    _percentile(reader_lat, 0.5) * 1e3, 3
                ),
                "nonblocking_ok": nonblocking_ok,
                "snapshot_isolation_ok": isolation_ok,
            },
            "lock": {"second_writer_rejected": lock_ok},
        }
        report["summary"] = {
            "group_commit_faster": group_cps > sequential_cps,
            "readers_never_block": nonblocking_ok,
            "snapshot_isolation": isolation_ok,
            "single_writer_lock": lock_ok,
            "ok": (
                group_cps > sequential_cps
                and nonblocking_ok
                and isolation_ok
                and lock_ok
            ),
        }
        return report
    finally:
        server.stop_in_thread()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the bench and write the JSON report."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.bench",
        description="Serving-layer load generator (BENCH_serve.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast variant (CI gate)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="report path (default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--writers", type=int, default=8, help="concurrent commit clients"
    )
    args = parser.parse_args(argv)
    report = run_serve_bench(writers=args.writers, smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    commits = report["commits"]
    print(
        f"commits/s: sequential {commits['sequential_commits_per_s']} "
        f"vs group {commits['group_commits_per_s']} "
        f"(x{commits['speedup']}, mean group "
        f"{commits['mean_group_size']})"
    )
    print(
        f"queries: p50 {report['queries']['p50_ms']}ms "
        f"p99 {report['queries']['p99_ms']}ms "
        f"({report['queries']['queries_per_s']}/s)"
    )
    print(
        f"reader max {report['reader_vs_writer']['reader_max_ms']}ms "
        f"during {report['reader_vs_writer']['bulk_commit_s']}s commit"
    )
    print(f"summary.ok: {report['summary']['ok']} -> {args.out}")
    return 0 if report["summary"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
