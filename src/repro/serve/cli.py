"""The ``repro serve`` subcommand: run and poke at a database server.

Usage::

    python -m repro.cli serve start mydb            # serve a durable store
    python -m repro.cli serve start --memory        # ephemeral catalog
    python -m repro.cli serve ping --port 7471
    python -m repro.cli serve info --port 7471
    python -m repro.cli serve query --port 7471 'EXISTS t. Event(t)'
    python -m repro.cli serve ask --port 7471 'EXISTS t. Event(t)'

``start`` holds the store's exclusive single-writer lock for the
server's lifetime and runs until interrupted (SIGINT shuts down
cleanly: in-flight commit groups finish their fsync, then the engine
closes).  The client subcommands are thin wrappers over
:class:`~repro.serve.client.SyncClient`.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.core.errors import ReproError
from repro.serve.client import SyncClient
from repro.serve.server import DEFAULT_HOST, ReproServer


def serve_main(argv: list[str]) -> int:
    """Entry point for ``repro serve ...``; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="Concurrent temporal-database server "
        "(MVCC snapshot reads, group commit)",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    start = sub.add_parser("start", help="run a server until interrupted")
    start.add_argument(
        "path", nargs="?", default=None, help="database directory"
    )
    start.add_argument(
        "--memory",
        action="store_true",
        help="serve an ephemeral in-memory catalog (no path)",
    )
    start.add_argument("--host", default=DEFAULT_HOST)
    start.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    start.add_argument(
        "--query-workers",
        type=int,
        default=4,
        metavar="N",
        help="threads evaluating queries concurrently",
    )

    for action, needs_text in (
        ("ping", False),
        ("info", False),
        ("query", True),
        ("ask", True),
    ):
        client_parser = sub.add_parser(
            action, help=f"send one {action!r} request to a server"
        )
        client_parser.add_argument("--host", default=DEFAULT_HOST)
        client_parser.add_argument("--port", type=int, required=True)
        if needs_text:
            client_parser.add_argument("text", help="the query text")

    args = parser.parse_args(argv)
    try:
        if args.action == "start":
            return _start(args)
        return _client_action(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1


def _start(args: argparse.Namespace) -> int:
    if args.memory == (args.path is not None):
        print("error: give exactly one of PATH or --memory")
        return 2
    if args.memory:
        server = ReproServer(
            host=args.host,
            port=args.port,
            query_workers=args.query_workers,
        )
        label = "(in-memory)"
    else:
        server = ReproServer.open(
            args.path,
            host=args.host,
            port=args.port,
            query_workers=args.query_workers,
        )
        label = args.path

    async def main() -> None:
        await server.start()
        print(
            f"serving {label} on {server.host}:{server.port} "
            f"(version {server.catalog.version})",
            flush=True,
        )
        try:
            await server._stop_event.wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _client_action(args: argparse.Namespace) -> int:
    with SyncClient(args.host, port=args.port) as client:
        if args.action == "ping":
            payload = client.ping()
            print(
                f"pong (version {payload['version']}, "
                f"protocol {payload['protocol']})"
            )
        elif args.action == "info":
            payload = client.info()
            kind = "durable" if payload["persistent"] else "in-memory"
            print(f"{kind} catalog @ version {payload['version']}")
            if not payload["relations"]:
                print("(no relations)")
            for name, size in payload["relations"].items():
                print(f"{name}: {size} generalized tuple(s)")
        elif args.action == "ask":
            print("true" if client.ask(args.text) else "false")
        else:  # query
            result = client.query(args.text)
            print(
                f"result{result.schema}: {len(result)} generalized tuple(s)"
            )
            for t in result.tuples[:20]:
                print(f"  {t}")
            if len(result) > 20:
                print(f"  ... and {len(result) - 20} more")
    return 0
