"""Clients for the served database: blocking sockets and asyncio.

:class:`SyncClient` is the workhorse — a plain blocking TCP socket
speaking the newline-delimited JSON protocol, safe to use from worker
threads (one client per thread; a single client is not thread-safe).
:class:`Client` is the asyncio twin for event-loop callers.

Both raise the *same* exceptions the in-process API raises: a served
``query`` against an unknown relation raises
:class:`~repro.core.errors.EvaluationError` exactly like
``Database.query`` would, because the server ships the exception class
name and the client re-raises it
(:func:`repro.serve.protocol.raise_remote`).  Protocol-level failures
raise :class:`~repro.core.errors.ServeError`.

Example::

    from repro.serve import SyncClient

    with SyncClient(port=server.port) as client:
        client.commit([
            {"op": "create", "name": "Event", "temporal": ["t"]},
            {"op": "insert", "name": "Event", "lrps": ["0 + 10n"]},
        ])
        pinned = client.snapshot()           # pin the committed version
        assert client.ask("EXISTS t. Event(t) & t >= 20")
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Any

from repro.core.errors import ServeError
from repro.core.relations import GeneralizedRelation
from repro.serve import protocol
from repro.storage import jsonio


class SyncClient:
    """A blocking client connection to a :class:`~repro.serve.server.
    ReproServer`.

    Not thread-safe: share nothing, one client per thread.  Usable as
    a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        *,
        port: int,
        timeout: float = 60.0,
    ) -> None:
        try:
            self._sock: socket.socket | None = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServeError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        self._rfile = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        if self._sock is None:
            raise ServeError("client is closed")
        request = {"id": next(self._ids), "op": op, **fields}
        try:
            self._sock.sendall(protocol.encode_frame(request))
            line = self._rfile.readline(protocol.MAX_FRAME_BYTES + 2)
        except OSError as exc:
            raise ServeError(f"connection failed: {exc}") from None
        if not line:
            raise ServeError("connection closed by server")
        response = protocol.decode_frame(line)
        if not response.get("ok"):
            protocol.raise_remote(response.get("error") or {})
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Round-trip liveness probe; returns version + protocol info."""
        return self._call("ping")

    def info(self) -> dict[str, Any]:
        """Catalog summary of the visible version (pin-aware)."""
        return self._call("info")

    def names(self) -> list[str]:
        """Relation names in the visible version."""
        return list(self._call("names")["names"])

    def snapshot(self) -> int:
        """Pin this connection to the current committed version.

        All subsequent reads on this connection see exactly the pinned
        version — later commits (from anyone, including this client)
        stay invisible until :meth:`release`.  Returns the pinned
        version token.
        """
        return int(self._call("snapshot")["version"])

    def release(self) -> int:
        """Unpin; reads follow the latest committed version again."""
        return int(self._call("release")["version"])

    def relation(self, name: str) -> GeneralizedRelation:
        """Fetch one relation of the visible version."""
        payload = self._call("relation", name=name)
        return jsonio.relation_from_dict(payload["relation"])

    def query(self, text: str) -> GeneralizedRelation:
        """Evaluate an open query; returns the result relation.

        For a ``MINIMIZE``/``MAXIMIZE`` directive the returned relation
        is the argopt restriction; use :meth:`optimize` to get the
        scalar verdict (value, witness, certificate).
        """
        payload = self._call("query", text=text)
        return jsonio.relation_from_dict(payload["result"])

    def optimize(self, text: str) -> dict[str, Any]:
        """Run a ``MINIMIZE``/``MAXIMIZE`` query; returns the verdict.

        ``text`` must carry the directive (``"MINIMIZE t : Event(t)"``).
        Returns the optimum payload — the JSON form of
        :meth:`repro.optimize.core.OptimizationResult.to_dict`:
        ``sense``, ``objective``, ``status``, exact ``value`` (or
        ``"-inf"``/``"+inf"``), ``witness`` point, ``argopt`` tuple
        text and the unboundedness ``certificate`` when there is one.
        """
        payload = self._call("query", text=text)
        try:
            return payload["optimum"]
        except KeyError:
            raise ServeError(
                "optimize() needs a MINIMIZE/MAXIMIZE query; got a plain "
                "query (use query() for those)"
            ) from None

    def ask(self, text: str) -> bool:
        """Evaluate a closed (yes/no) query."""
        return bool(self._call("ask", text=text)["answer"])

    def commit(self, mutations: list[dict]) -> dict[str, Any]:
        """Submit one transaction; returns ``{"version", "records"}``.

        Blocks until the transaction's commit group is durable (the
        group's single fsync completed); a transaction the server
        aborts raises its original error, and leaves every other
        member of the group untouched.
        """
        payload = self._call("commit", mutations=mutations)
        return {
            "version": int(payload["version"]),
            "records": int(payload["records"]),
        }

    def append(self, name: str, tuples) -> dict[str, Any]:
        """Append a batch of tuples to ``name`` as one transaction.

        ``tuples`` may hold :class:`~repro.core.tuples.GeneralizedTuple`
        values or jsonio tuple entries; the batch rides the server's
        group commit, so concurrent appenders share one fsync and one
        materialized-view refresh.  Returns ``{"version", "records"}``.
        """
        payload = self._call(
            "append", name=name, tuples=_tuple_entries(tuples)
        )
        return {
            "version": int(payload["version"]),
            "records": int(payload["records"]),
        }

    def install_program(self, text: str, *, verify: bool = False) -> dict:
        """Install a deductive program from its text form.

        The server materializes the program's IDB predicates as views
        in the committed catalog (see :meth:`Database.install_program
        <repro.query.database.Database.install_program>`).  Returns
        ``{"version", "views", "mode"}`` where ``mode`` is
        ``"recompute"`` or ``"adopt"``.
        """
        payload = self._call("install_program", text=text, verify=verify)
        return {
            "version": int(payload["version"]),
            "views": list(payload["views"]),
            "mode": payload["mode"],
        }

    def views(self) -> dict[str, int]:
        """Materialized views of the visible version, with watermarks."""
        return {
            str(name): int(token)
            for name, token in self._call("views")["views"].items()
        }

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._rfile.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> SyncClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Client:
    """The asyncio client: the same operations, awaitable.

    Create with :meth:`connect`; one outstanding request at a time per
    client (the protocol answers in order, so callers wanting
    pipelining open several clients).
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", *, port: int
    ) -> Client:
        """Open a connection to a running server."""
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.MAX_FRAME_BYTES
            )
        except OSError as exc:
            raise ServeError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        return cls(reader, writer)

    async def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        request = {"id": next(self._ids), "op": op, **fields}
        self._writer.write(protocol.encode_frame(request))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServeError("connection closed by server")
        response = protocol.decode_frame(line)
        if not response.get("ok"):
            protocol.raise_remote(response.get("error") or {})
        return response

    async def ping(self) -> dict[str, Any]:
        """Round-trip liveness probe; returns version + protocol info."""
        return await self._call("ping")

    async def info(self) -> dict[str, Any]:
        """Catalog summary of the visible version (pin-aware)."""
        return await self._call("info")

    async def names(self) -> list[str]:
        """Relation names in the visible version."""
        return list((await self._call("names"))["names"])

    async def snapshot(self) -> int:
        """Pin this connection to the current committed version."""
        return int((await self._call("snapshot"))["version"])

    async def release(self) -> int:
        """Unpin; reads follow the latest committed version again."""
        return int((await self._call("release"))["version"])

    async def relation(self, name: str) -> GeneralizedRelation:
        """Fetch one relation of the visible version."""
        payload = await self._call("relation", name=name)
        return jsonio.relation_from_dict(payload["relation"])

    async def query(self, text: str) -> GeneralizedRelation:
        """Evaluate an open query; returns the result relation."""
        payload = await self._call("query", text=text)
        return jsonio.relation_from_dict(payload["result"])

    async def optimize(self, text: str) -> dict[str, Any]:
        """Run a ``MINIMIZE``/``MAXIMIZE`` query; returns the verdict.

        The awaitable twin of :meth:`SyncClient.optimize`.
        """
        payload = await self._call("query", text=text)
        try:
            return payload["optimum"]
        except KeyError:
            raise ServeError(
                "optimize() needs a MINIMIZE/MAXIMIZE query; got a plain "
                "query (use query() for those)"
            ) from None

    async def ask(self, text: str) -> bool:
        """Evaluate a closed (yes/no) query."""
        return bool((await self._call("ask", text=text))["answer"])

    async def commit(self, mutations: list[dict]) -> dict[str, Any]:
        """Submit one transaction; resolves after its group's fsync."""
        payload = await self._call("commit", mutations=mutations)
        return {
            "version": int(payload["version"]),
            "records": int(payload["records"]),
        }

    async def append(self, name: str, tuples) -> dict[str, Any]:
        """Append a batch of tuples to ``name`` as one transaction."""
        payload = await self._call(
            "append", name=name, tuples=_tuple_entries(tuples)
        )
        return {
            "version": int(payload["version"]),
            "records": int(payload["records"]),
        }

    async def install_program(
        self, text: str, *, verify: bool = False
    ) -> dict:
        """Install a deductive program from its text form."""
        payload = await self._call(
            "install_program", text=text, verify=verify
        )
        return {
            "version": int(payload["version"]),
            "views": list(payload["views"]),
            "mode": payload["mode"],
        }

    async def views(self) -> dict[str, int]:
        """Materialized views of the visible version, with watermarks."""
        return {
            str(name): int(token)
            for name, token in (await self._call("views"))["views"].items()
        }

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    async def __aenter__(self) -> Client:
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


def _tuple_entries(tuples) -> list[dict]:
    """Normalize append() items to jsonio tuple entries for the wire."""
    from repro.core.errors import ReproTypeError
    from repro.core.tuples import GeneralizedTuple

    entries: list[dict] = []
    for value in tuples:
        if isinstance(value, GeneralizedTuple):
            entries.append(
                {
                    "lrps": [
                        [lrp.offset, lrp.period] for lrp in value.lrps
                    ],
                    "bounds": [
                        [i, j, bound]
                        for i, j, bound in value.dbm.iter_bounds()
                    ],
                    "data": list(value.data),
                }
            )
        elif isinstance(value, dict):
            entries.append(value)
        else:
            raise ReproTypeError(
                "append items must be GeneralizedTuple values or jsonio "
                f"tuple entries, not {type(value).__name__}"
            )
    return entries
