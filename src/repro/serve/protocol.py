"""The wire protocol: newline-delimited JSON request/response frames.

One TCP connection carries a sequence of requests, each a single line
of JSON terminated by ``\\n``; the server answers every request with
exactly one JSON line.  Requests and responses are JSON objects:

Request::

    {"id": 7, "op": "query", "text": "EXISTS t. Event(t)"}

Success response (op-specific fields alongside)::

    {"id": 7, "ok": true, "version": 12, "result": {...}}

Error response::

    {"id": 7, "ok": false,
     "error": {"type": "EvaluationError", "message": "unknown ..."}}

``id`` is an opaque client-chosen correlation value echoed back
verbatim; the server answers requests of one connection in order, so
pipelining is safe.  ``error.type`` is the server-side exception class
name — the client re-raises the matching
:class:`~repro.core.errors.ReproError` subclass when one exists and
:class:`~repro.core.errors.ServeError` otherwise.

Operations
----------

=============  ==============================  ============================
op             request fields                  success fields
=============  ==============================  ============================
``ping``       —                               ``pong``, ``version``,
                                               ``protocol``
``info``       —                               ``version``, ``persistent``,
                                               ``relations`` (name→size)
``names``      —                               ``names``
``snapshot``   —                               ``version`` (now pinned)
``release``    —                               ``version`` (current again)
``relation``   ``name``                        ``version``, ``relation``
``query``      ``text``                        ``version``, ``result``
                                               (+ ``optimum`` for
                                               MINIMIZE/MAXIMIZE)
``ask``        ``text``                        ``version``, ``answer``
``commit``     ``mutations`` (list of dicts)   ``version``, ``records``
=============  ==============================  ============================

``query``/``ask``/``relation`` evaluate against the connection's
pinned snapshot when one is held (``snapshot`` op), else against the
latest committed version.  A ``query`` whose text carries a
``MINIMIZE``/``MAXIMIZE`` directive additionally answers with an
``optimum`` object — the exact extremum verdict of
:meth:`repro.optimize.core.OptimizationResult.to_dict` (value or
``±inf``, witness point, argopt tuple, unboundedness certificate) —
while ``result`` holds the argopt restriction relation.  ``commit`` submits one transaction — a
mutation list in the JSON shape of
:func:`repro.query.catalog.apply_mutations` — to the group-commit
batcher; the response arrives only after the transaction is durable
(fsync), and carries the version token it committed as.

Frames are capped at :data:`MAX_FRAME_BYTES`; an oversized or
non-JSON frame is a protocol error that closes the connection.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core import errors as _errors
from repro.core.errors import ReproError, ServeError

#: Protocol revision carried in every ``ping`` response.
PROTOCOL_VERSION = 1

#: Hard cap on one frame (request or response line), in bytes.
MAX_FRAME_BYTES = 32 << 20

#: The operations the server understands.
OPS = (
    "ping",
    "info",
    "names",
    "snapshot",
    "release",
    "relation",
    "query",
    "ask",
    "commit",
)


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one request/response object to a newline-framed line."""
    data = json.dumps(payload, separators=(",", ":"), default=_default)
    raw = data.encode("utf-8") + b"\n"
    if len(raw) > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {len(raw)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return raw


def _default(value: Any) -> Any:
    raise ServeError(f"payload value {value!r} is not JSON-serializable")


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a request/response object."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ServeError(
            f"malformed frame: expected a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def error_payload(request_id: Any, exc: BaseException) -> dict[str, Any]:
    """The error-response object for a failed request."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def raise_remote(error: dict[str, Any]) -> None:
    """Re-raise a server-reported error on the client side.

    The error's ``type`` names the exception class the server caught;
    when it matches a :class:`~repro.core.errors.ReproError` subclass
    the client raises that same type (so ``except EvaluationError``
    works identically in-process and over the wire).  Unknown types —
    and protocol-level failures — surface as
    :class:`~repro.core.errors.ServeError` with the original class
    name preserved in ``remote_type``.
    """
    name = str(error.get("type") or "ServeError")
    message = str(error.get("message") or "request failed")
    cls = getattr(_errors, name, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and cls is not ServeError
    ):
        raise cls(message)
    raise ServeError(message, remote_type=name)
