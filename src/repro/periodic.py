"""PeriodicSet: a Pythonic facade over unary generalized relations.

Most day-to-day uses of the paper's machinery are about one time line:
"every 6 minutes from minute 2", "weekdays at 9", "never during the
maintenance window".  :class:`PeriodicSet` wraps a unary generalized
relation behind the interface of a Python set of integers — operators
``| & - ^ ~``, ``in``, comparisons — while staying exact and infinite
underneath.

    >>> from repro.periodic import PeriodicSet
    >>> fires = PeriodicSet.every(6, offset=2)
    >>> window = PeriodicSet.interval(100, 200)
    >>> risky = fires & window
    >>> 104 in risky
    True
    >>> (~fires).next_at_or_after(2)
    3
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core import algebra
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.errors import ReproTypeError, ReproValueError
from repro.core.temporal import (
    column_profile,
    count_points,
    is_finite,
    next_event,
    prev_event,
)

_SCHEMA = Schema.make(temporal=["t"])


class PeriodicSet:
    """An exactly-represented, possibly infinite set of integers.

    Immutable; every operation returns a new set.  Backed by a unary
    generalized relation, so all the closure and decidability results
    of the paper apply: complements, differences and emptiness are
    exact, never approximated by a horizon.
    """

    __slots__ = ("_relation",)

    def __init__(self, relation: GeneralizedRelation) -> None:
        if (
            relation.schema.temporal_arity != 1
            or relation.schema.data_arity != 0
        ):
            raise ReproValueError("PeriodicSet wraps unary temporal relations")
        if relation.schema.temporal_names != ("t",):
            relation = algebra.rename(
                relation, {relation.schema.temporal_names[0]: "t"}
            )
        self._relation = relation

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> PeriodicSet:
        """The empty set."""
        return cls(GeneralizedRelation.empty(_SCHEMA))

    @classmethod
    def all_integers(cls) -> PeriodicSet:
        """All of Z."""
        return cls(GeneralizedRelation.universe(_SCHEMA))

    @classmethod
    def every(cls, period: int, offset: int = 0) -> PeriodicSet:
        """``{offset + period·n | n ∈ Z}``."""
        if period <= 0:
            raise ReproValueError("period must be positive")
        rel = GeneralizedRelation.empty(_SCHEMA)
        rel.add_tuple([LRP.make(offset, period)])
        return cls(rel)

    @classmethod
    def points(cls, values: Iterable[int]) -> PeriodicSet:
        """A finite set of explicit points."""
        rel = GeneralizedRelation.empty(_SCHEMA)
        for value in values:
            rel.add_tuple([int(value)])
        return cls(rel)

    @classmethod
    def interval(cls, low: int, high: int) -> PeriodicSet:
        """The contiguous range ``[low, high]`` (inclusive)."""
        if low > high:
            return cls.empty()
        rel = GeneralizedRelation.empty(_SCHEMA)
        rel.add_tuple(["n"], f"t >= {low} & t <= {high}")
        return cls(rel)

    @classmethod
    def at_or_above(cls, low: int) -> PeriodicSet:
        """``{x | x >= low}``."""
        rel = GeneralizedRelation.empty(_SCHEMA)
        rel.add_tuple(["n"], f"t >= {low}")
        return cls(rel)

    @classmethod
    def at_or_below(cls, high: int) -> PeriodicSet:
        """``{x | x <= high}``."""
        rel = GeneralizedRelation.empty(_SCHEMA)
        rel.add_tuple(["n"], f"t <= {high}")
        return cls(rel)

    @classmethod
    def from_lrp(cls, text: str, constraint: str = "") -> PeriodicSet:
        """From the paper's syntax: ``from_lrp("3 + 5n", "t >= 0")``."""
        rel = GeneralizedRelation.empty(_SCHEMA)
        rel.add_tuple([text], constraint)
        return cls(rel)

    # ------------------------------------------------------------------
    # the wrapped relation
    # ------------------------------------------------------------------

    @property
    def relation(self) -> GeneralizedRelation:
        """The underlying unary generalized relation."""
        return self._relation

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------

    def __contains__(self, value: int) -> bool:
        return self._relation.contains([value])

    def __or__(self, other: PeriodicSet) -> PeriodicSet:
        return PeriodicSet(algebra.union(self._relation, other._relation))

    def __and__(self, other: PeriodicSet) -> PeriodicSet:
        return PeriodicSet(
            algebra.intersect(self._relation, other._relation)
        )

    def __sub__(self, other: PeriodicSet) -> PeriodicSet:
        return PeriodicSet(
            algebra.subtract(self._relation, other._relation)
        )

    def __xor__(self, other: PeriodicSet) -> PeriodicSet:
        return (self - other) | (other - self)

    def __invert__(self) -> PeriodicSet:
        return PeriodicSet(algebra.complement(self._relation))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PeriodicSet):
            return NotImplemented
        return algebra.equivalent(self._relation, other._relation)

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable-ish
        raise ReproTypeError(
            "PeriodicSet is unhashable (semantic equality is not "
            "canonical); use str(s) or a snapshot as a key"
        )

    def __le__(self, other: PeriodicSet) -> bool:
        """Subset test (exact)."""
        return (self - other).is_empty()

    def __lt__(self, other: PeriodicSet) -> bool:
        return self <= other and self != other

    def __ge__(self, other: PeriodicSet) -> bool:
        return other <= self

    def __gt__(self, other: PeriodicSet) -> bool:
        return other < self

    def isdisjoint(self, other: PeriodicSet) -> bool:
        """Whether the sets share no point (exact)."""
        return (self & other).is_empty()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """Exact emptiness (Theorem 3.5)."""
        return self._relation.is_empty()

    def is_finite(self) -> bool:
        """Whether the set has finitely many members."""
        return is_finite(self._relation)

    def __len__(self) -> int:
        """Exact cardinality; raises :class:`TypeError` when infinite."""
        count = count_points(self._relation)
        if count is None:
            raise ReproTypeError("infinite PeriodicSet has no len()")
        return count

    def next_at_or_after(self, value: int) -> int | None:
        """Smallest member ``>= value`` (exact), or ``None``."""
        return next_event(self._relation, "t", value)

    def prev_at_or_before(self, value: int) -> int | None:
        """Largest member ``<= value`` (exact), or ``None``."""
        return prev_event(self._relation, "t", value)

    def minimum(self) -> int | None:
        """Smallest member, or ``None`` when empty or unbounded below."""
        return column_profile(self._relation, "t").lower

    def maximum(self) -> int | None:
        """Largest member, or ``None`` when empty or unbounded above."""
        return column_profile(self._relation, "t").upper

    def iterate_from(self, start: int) -> Iterator[int]:
        """Ascending members from ``start`` on (possibly endless)."""
        current = self.next_at_or_after(start)
        while current is not None:
            yield current
            current = self.next_at_or_after(current + 1)

    def between(self, low: int, high: int) -> list[int]:
        """Members within ``[low, high]``, ascending."""
        return sorted(x for (x,) in self._relation.enumerate(low, high))

    def shift(self, delta: int) -> PeriodicSet:
        """``{x + delta | x ∈ self}``."""
        return PeriodicSet(
            algebra.shift_column(self._relation, "t", delta)
        )

    def simplify(self) -> PeriodicSet:
        """Remove redundant tuples from the representation."""
        return PeriodicSet(self._relation.simplify())

    def __repr__(self) -> str:
        n = len(self._relation)
        return f"<PeriodicSet {n} tuple(s): {self._preview()}>"

    def _preview(self, limit: int = 4) -> str:
        parts = []
        for gtuple in self._relation.tuples[:limit]:
            parts.append(str(gtuple))
        if len(self._relation) > limit:
            parts.append("...")
        return "; ".join(parts) or "(empty)"
