"""Figure 3 / Example 3.2 — the five-step normalization, reproduced exactly.

The paper normalizes ``[4n+3, 8n+1] ∧ X1>=X2 ∧ X1<=X2+5 ∧ X2>=2`` into
two period-8 tuples, one of which is contradictory and dropped; the
surviving tuple is ``[8n+3, 8n+1] ∧ X1 = X2 + 2 ∧ X2 >= 9``, whose
projection is ``8n+3 ∧ X1 >= 11``.  The report replays every step.

Run standalone:  python benchmarks/test_bench_fig3_normalization.py
"""

from repro.core import algebra
from repro.core.lrp import LRP
from repro.core.normalize import normalize_tuple

try:
    from benchmarks.workloads import figure2_relation
except ImportError:
    from workloads import figure2_relation


def test_bench_normalization(benchmark):
    """Time the 5-step normalization of the Example 3.2 tuple."""
    (gtuple,) = figure2_relation().tuples
    result = benchmark(lambda: normalize_tuple(gtuple, keep_empty=True))
    assert len(result) == 2


def figure3_report() -> list[str]:
    (gtuple,) = figure2_relation().tuples
    lines = [
        "Figure 3 / Example 3.2 — normalization of "
        "[4n+3, 8n+1] ∧ X1>=X2 ∧ X1<=X2+5 ∧ X2>=2",
        "-" * 78,
        "step 1-2 (Lemma 3.1 split of 4n+3 onto period 8, cross product):",
    ]
    ok = True
    split = LRP.make(3, 4).split(8)
    lines.append(f"  4n+3 -> {', '.join(str(p) for p in split)}")
    ok = ok and split == [LRP.make(3, 8), LRP.make(7, 8)]
    results = normalize_tuple(gtuple, keep_empty=True)
    lines.append("steps 3-5 (constraint rewriting, filtering, snapping):")
    for nt in results:
        empty = nt.is_empty()
        lines.append(
            f"  offsets {nt.offsets}: "
            + ("eliminated (contradictory constraints)" if empty else
               f"survives as {nt.to_generalized()}")
        )
    survivors = [nt for nt in results if not nt.is_empty()]
    ok = ok and len(results) == 2 and len(survivors) == 1
    ok = ok and survivors[0].offsets == (3, 1)
    survivor = survivors[0].to_generalized()
    # The paper's normal form: X1 = X2 + 2 and X2 >= 9 on [8n+3, 8n+1].
    checks = [
        survivor.contains([11, 9]),
        survivor.contains([19, 17]),
        not survivor.contains([3, 1]),   # X2 >= 9 (snapped from >= 2)
        not survivor.contains([19, 9]),  # X1 = X2 + 2
    ]
    ok = ok and all(checks)
    lines.append("paper's surviving normal form matches: "
                 f"{all(checks)}")
    projection = algebra.project(figure2_relation(), ["X1"])
    (ptuple,) = projection.tuples
    lines.append(f"final projection on X1: {ptuple}")
    ok = ok and ptuple.lrps[0] == LRP.make(3, 8)
    ok = ok and ptuple.dbm.lower(0) == 11
    lines.append("paper's answer:         [3 + 8n] : X1 >= 11")
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_figure3_report(benchmark):
    lines = benchmark.pedantic(figure3_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in figure3_report():
        print(line)
