"""Run every benchmark report standalone and consolidate the output.

Usage::

    python benchmarks/run_all_reports.py            # print to stdout
    python benchmarks/run_all_reports.py REPORTS.md # also write a file

Each ``test_bench_*.py`` module exposes one ``*_report()`` function that
regenerates its paper artifact (table, figure, theorem, or ablation);
this driver runs them all in a deterministic order — the quick way to
refresh ``EXPERIMENTS.md`` on new hardware.
"""

from __future__ import annotations

import importlib
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(HERE.parent))

#: (module, report function) in presentation order.
REPORTS = [
    ("test_bench_table1_robots", "table1_report"),
    ("test_bench_example24_trains", "example24_report"),
    ("test_bench_table2_fixed_schema", "table2_report"),
    ("test_bench_table3_general", "table3_report"),
    ("test_bench_fig1_subtraction", "figure1_report"),
    ("test_bench_fig2_projection", "figure2_report"),
    ("test_bench_fig3_normalization", "figure3_report"),
    ("test_bench_thm21_presburger", "thm21_report"),
    ("test_bench_thm22_presburger", "thm22_report"),
    ("test_bench_thm35_emptiness", "thm35_report"),
    ("test_bench_thm36_npcomplete", "thm36_report"),
    ("test_bench_thm41_query", "thm41_report"),
    ("test_bench_example41_query", "example41_report"),
    ("test_bench_ablation_lcm", "ablation_report"),
    ("test_bench_ablation_baseline", "baseline_report"),
    ("test_bench_ablation_complement", "ablation_report"),
    ("perf_report", "perf_report"),
    ("serve_report", "serve_report"),
    ("stream_report", "stream_report"),
    ("opt_report", "opt_report"),
]


def run_all() -> tuple[list[str], bool]:
    """Run every report; returns (lines, all_ok)."""
    lines: list[str] = []
    all_ok = True
    for module_name, function_name in REPORTS:
        module = importlib.import_module(module_name)
        report = getattr(module, function_name)
        start = time.perf_counter()
        body = report()
        elapsed = time.perf_counter() - start
        lines.append("")
        lines.append("=" * 78)
        lines.extend(body)
        lines.append(f"(report regenerated in {elapsed:.1f}s)")
        if any("SUSPECT" in line or "DISAGREE" in line for line in body):
            all_ok = False
    lines.append("")
    lines.append("=" * 78)
    lines.append(
        "ALL REPORTS OK" if all_ok else "SOME REPORTS FLAGGED — inspect above"
    )
    return lines, all_ok


def main(argv: list[str]) -> int:
    lines, all_ok = run_all()
    text = "\n".join(lines) + "\n"
    print(text)
    if len(argv) > 1:
        pathlib.Path(argv[1]).write_text(text)
        print(f"written to {argv[1]}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
