"""Ablation — per-component periods in complement (our refinement).

The paper's negation algorithm (Appendix A.6) normalizes the whole
relation to one period k and enumerates k^m free extensions.  Columns
that are never constrained against each other can keep *independent*
periods, shrinking the enumeration to Π k_comp^|comp|.  This bench
quantifies the gap and confirms both implementations agree.

Run standalone:  python benchmarks/test_bench_ablation_complement.py
"""

import pytest

from repro.analysis import time_callable
from repro.core.negation import complement_tuples
from repro.core.relations import GeneralizedRelation, Schema


def independent_columns_relation(periods: list[int]) -> GeneralizedRelation:
    """One tuple per period mix; no cross-column constraints."""
    names = [f"X{i}" for i in range(len(periods))]
    rel = GeneralizedRelation.empty(Schema.make(temporal=names))
    rel.add_tuple([f"{k}n" for k in periods], f"X0 >= 0")
    rel.add_tuple([f"1 + {k}n" for k in periods], f"X0 <= 100")
    return rel


def coupled_columns_relation(periods: list[int]) -> GeneralizedRelation:
    """Same lrps but a constraint chain linking every column."""
    names = [f"X{i}" for i in range(len(periods))]
    rel = GeneralizedRelation.empty(Schema.make(temporal=names))
    chain = " & ".join(
        f"X{i} <= X{i + 1} + 3" for i in range(len(periods) - 1)
    )
    rel.add_tuple([f"{k}n" for k in periods], chain)
    return rel


def test_bench_decomposed_complement(benchmark):
    rel = independent_columns_relation([4, 5, 6])
    out = benchmark(lambda: complement_tuples(list(rel), 3))
    assert out


def test_bench_uniform_complement(benchmark):
    rel = independent_columns_relation([2, 3, 5])
    out = benchmark(
        lambda: complement_tuples(
            list(rel), 3, uniform_period=True, max_extensions=10_000_000
        )
    )
    assert out


def ablation_report() -> list[str]:
    lines = [
        "Ablation — complement free-extension enumeration: per-component "
        "periods vs the paper's uniform k",
        "-" * 78,
        f"{'workload':<28} {'uniform ext.':>13} {'decomposed ext.':>16} "
        f"{'uniform':>10} {'decomposed':>11}",
    ]
    ok = True
    cases = [
        ("independent (4,5)", independent_columns_relation([4, 5]),
         20 ** 2, 4 * 5),
        ("independent (9,10)", independent_columns_relation([9, 10]),
         90 ** 2, 9 * 10),
        ("independent (2,3,5)", independent_columns_relation([2, 3, 5]),
         30 ** 3, 2 * 3 * 5),
        ("chained (4,5)", coupled_columns_relation([4, 5]),
         20 ** 2, 20 ** 2),
    ]
    window = (-6, 6)
    for name, rel, uniform_ext, decomposed_ext in cases:
        arity = rel.schema.temporal_arity
        dec_tuples = complement_tuples(list(rel), arity)
        uni_tuples = complement_tuples(
            list(rel), arity, uniform_period=True, max_extensions=10_000_000
        )
        t_dec = time_callable(
            lambda r=rel, a=arity: complement_tuples(list(r), a), repeat=1
        )
        t_uni = time_callable(
            lambda r=rel, a=arity: complement_tuples(
                list(r), a, uniform_period=True, max_extensions=10_000_000
            ),
            repeat=1,
        )
        dec = GeneralizedRelation(rel.schema, dec_tuples)
        uni = GeneralizedRelation(rel.schema, uni_tuples)
        agree = dec.snapshot(*window) == uni.snapshot(*window)
        ok = ok and agree
        lines.append(
            f"{name:<28} {uniform_ext:>13,} {decomposed_ext:>16,} "
            f"{t_uni * 1000:>8.0f}ms {t_dec * 1000:>9.0f}ms"
            + ("" if agree else "  DISAGREE")
        )
    lines.append("-" * 78)
    lines.append(
        "shape: with unconstrained column pairs the decomposed enumeration "
        "is orders of magnitude smaller; with a full constraint chain the "
        "two coincide.  Semantics agree on every case."
    )
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_ablation_complement_report(benchmark):
    lines = benchmark.pedantic(ablation_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in ablation_report():
        print(line)
