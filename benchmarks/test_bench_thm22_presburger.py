"""Theorem 2.2 — binary Presburger ⇔ lrp definable (general constraints).

The report compiles binary basic formulas (comparisons with arbitrary
coefficients and modular congruences) and boolean combinations into
general-constraint relations, validating each against direct evaluation.
It also demonstrates the theorem's fine print: the congruence case
decomposes into pure lattice classes (no constraints), and non-unit
coefficients genuinely need general constraints.

Run standalone:  python benchmarks/test_bench_thm22_presburger.py
"""

from repro.core.errors import ConstraintError
from repro.presburger import (
    binary_to_restricted,
    compile_binary,
    parse_formula,
    solutions,
)

WINDOW = (-12, 12)

FIXED_FORMULAS = [
    "3x = 2y + 1",
    "3x < 2y + 1",
    "3x > 2y + 1",
    "2x = 3y + 1 mod 5",
    "x = y mod 2 & x >= 0",
    "~(3x = 2y) & x < y + 4",
    "2x = 4 | y = 1 mod 3",
    "4x = 6y mod 8 & x < 5",
]


def test_bench_compile_binary(benchmark):
    """Time compiling the fixed binary formula battery."""
    formulas = [parse_formula(text) for text in FIXED_FORMULAS]

    def run():
        return [compile_binary(f, variables=("x", "y")) for f in formulas]

    relations = benchmark(run)
    assert len(relations) == len(formulas)


def thm22_report() -> list[str]:
    lines = [
        "Theorem 2.2 — binary Presburger predicates are lrp definable "
        "(general constraints)",
        "-" * 78,
    ]
    ok = True
    for text in FIXED_FORMULAS:
        formula = parse_formula(text)
        grel = compile_binary(formula, variables=("x", "y"))
        got = grel.snapshot(*WINDOW)
        want = solutions(formula, ["x", "y"], *WINDOW)
        match = got == want
        ok = ok and match
        lines.append(
            f"  {text:<28} -> {len(grel):>3} tuple(s); window agrees: {match}"
        )
    # The congruence construction yields pure lattice classes:
    lattice = compile_binary(parse_formula("2x = 3y + 1 mod 5"))
    pure = all(not t.atoms for t in lattice.tuples)
    lines.append(
        f"  congruence case decomposes into {len(lattice)} constraint-free "
        f"lattice classes: {pure}"
    )
    ok = ok and pure
    # Non-unit coefficients are genuinely general:
    try:
        binary_to_restricted(
            compile_binary(parse_formula("3x = 2y + 1"), variables=("x", "y"))
        )
        needs_general = False
    except ConstraintError:
        needs_general = True
    lines.append(
        f"  3x = 2y + 1 has no restricted form (needs general "
        f"constraints): {needs_general}"
    )
    ok = ok and needs_general
    # Unit-coefficient formulas convert back to the restricted algebra:
    restricted = binary_to_restricted(
        compile_binary(
            parse_formula("x = y mod 2 & x <= y + 4"), variables=("x", "y")
        ),
        names=("x", "y"),
    )
    conv = restricted.snapshot(*WINDOW) == solutions(
        parse_formula("x = y mod 2 & x <= y + 4"), ["x", "y"], *WINDOW
    )
    lines.append(f"  unit-coefficient formulas convert to restricted: {conv}")
    ok = ok and conv
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_thm22_report(benchmark):
    lines = benchmark.pedantic(thm22_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in thm22_report():
        print(line)
