"""Table 3 — general complexity: schema width varies too.

Paper's claims: union, cross-product, intersection, join, projection and
emptiness stay PTIME when both N and m grow; negation is EXPTIME (the
complement enumerates k^m free extensions), and nonemptiness of the
complement is NP-complete (benchmarked separately in
``test_bench_thm36_npcomplete.py``).

The report sweeps the column count m at fixed N and shows that the
PTIME operations grow modestly while negation's cost explodes with m —
the qualitative separation Table 3 asserts.

Run standalone:  python benchmarks/test_bench_table3_general.py
"""

import pytest

from repro.analysis import time_callable
from repro.core import algebra
from repro.core.emptiness import relation_is_empty

try:
    from benchmarks.workloads import normalized_relation
except ImportError:
    from workloads import normalized_relation

N_FIXED = 12
M_SWEEP = [1, 2, 3, 4, 5]
PERIOD = 4  # complement enumerates PERIOD^m free extensions


def _ptime_ops(m: int):
    r1 = normalized_relation(N_FIXED, m, period=PERIOD, seed=1)
    r2 = normalized_relation(N_FIXED, m, period=PERIOD, seed=2)
    keep = [f"X{i}" for i in range(max(1, m - 1))]
    return {
        "union": lambda: algebra.union(r1, r2),
        "intersection": lambda: algebra.intersect(r1, r2),
        "projection": lambda: algebra.project(r1, keep),
        "emptiness": lambda: relation_is_empty(r1),
    }


def _negation(m: int):
    r = normalized_relation(N_FIXED, m, period=PERIOD, seed=1)
    return lambda: algebra.complement(r)


@pytest.mark.parametrize("m", [2, 4])
def test_bench_ptime_ops_scale_in_m(benchmark, m):
    """Join-free PTIME bundle at width m (one call runs all four ops)."""
    ops = _ptime_ops(m)

    def bundle():
        for op in ops.values():
            op()

    benchmark(bundle)


@pytest.mark.parametrize("m", [1, 2, 3])
def test_bench_negation_scales_exponentially(benchmark, m):
    """Complement at width m: cost tracks PERIOD^m free extensions."""
    benchmark(_negation(m))


def table3_report() -> list[str]:
    lines = [
        f"Table 3 — general complexity (N = {N_FIXED}, m swept over "
        f"{M_SWEEP}, period {PERIOD})",
        "-" * 78,
        f"{'operation':<16}" + "".join(f"m={m:<10}" for m in M_SWEEP),
    ]
    rows: dict[str, list[float]] = {
        "union": [],
        "intersection": [],
        "projection": [],
        "emptiness": [],
        "negation": [],
    }
    for m in M_SWEEP:
        ops = _ptime_ops(m)
        for name, op in ops.items():
            rows[name].append(time_callable(op, repeat=3))
        rows["negation"].append(time_callable(_negation(m), repeat=1))
    for name, times in rows.items():
        cells = "".join(f"{t * 1000:8.2f}ms " for t in times)
        lines.append(f"{name:<16}{cells}")
    # Qualitative check: negation's m=4/m=1 blow-up dwarfs the others'.
    def ratio(times):
        return times[-1] / max(times[0], 1e-9)

    neg_ratio = ratio(rows["negation"])
    ptime_ratio = max(ratio(rows[n]) for n in rows if n != "negation")
    lines.append("-" * 78)
    lines.append(
        f"negation m={M_SWEEP[-1]}/m=1 cost ratio: {neg_ratio:9.1f}x   "
        f"worst PTIME-op ratio: {ptime_ratio:6.1f}x"
    )
    lines.append(
        "verdict: "
        + (
            "negation separates (exponential in m), rest stay modest — OK"
            if neg_ratio > 3 * ptime_ratio
            else "SUSPECT: no separation observed"
        )
    )
    return lines


def test_table3_shape_report(benchmark):
    lines = benchmark.pedantic(table3_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert not any("SUSPECT" in line for line in lines)


if __name__ == "__main__":
    for line in table3_report():
        print(line)
