"""Ablation (Section 3.8) — normalization cost is governed by the lcm.

"Clearly, if the least common multiple of the initial periods is large,
normalization can imply a substantial increase in the size of the
database.  However, this will only be the case if the periods appearing
in the database are not closely related."

The report normalizes same-shape relations whose periods are (a) nested
powers of two, (b) small mixed, (c) pairwise coprime, and compares the
output tuple counts and times.  It also shows the payoff of the *partial*
normalization inside projection: dropping an unconstrained column costs
nothing even when the relation's global lcm is huge.

Run standalone:  python benchmarks/test_bench_ablation_lcm.py
"""

import pytest

from repro.analysis import time_callable
from repro.arith import lcm_many
from repro.core import algebra
from repro.core.normalize import normalize_relation_tuples

try:
    from benchmarks.workloads import mixed_period_relation
except ImportError:
    from workloads import mixed_period_relation

N_TUPLES = 6
PERIOD_MIXES = {
    "nested (2,4,8)": [2, 4, 8],
    "mixed (2,3,4)": [2, 3, 4],
    "coprime (3,5,7)": [3, 5, 7],
    "coprime (5,7,9)": [5, 7, 9],
}


def test_bench_normalize_related_periods(benchmark):
    rel = mixed_period_relation(N_TUPLES, 2, [2, 4, 8], seed=3)
    benchmark(lambda: normalize_relation_tuples(list(rel)))


def test_bench_normalize_coprime_periods(benchmark):
    rel = mixed_period_relation(N_TUPLES, 2, [3, 5, 7], seed=3)
    benchmark(lambda: normalize_relation_tuples(list(rel)))


def ablation_report() -> list[str]:
    lines = [
        "Ablation — normalization blow-up tracks lcm of the periods "
        f"(N = {N_TUPLES}, m = 2)",
        "-" * 78,
        f"{'period mix':<18} {'lcm':>6} {'tuples out':>11} {'time':>10}",
    ]
    outputs = {}
    for name, periods in PERIOD_MIXES.items():
        rel = mixed_period_relation(N_TUPLES, 2, periods, seed=3)
        period, normalized = normalize_relation_tuples(list(rel))
        t = time_callable(
            lambda r=rel: normalize_relation_tuples(list(r)), repeat=3
        )
        outputs[name] = len(normalized)
        lines.append(
            f"{name:<18} {lcm_many(periods):>6} {len(normalized):>11} "
            f"{t * 1000:>8.2f}ms"
        )
    ok = outputs["coprime (5,7,9)"] > 5 * outputs["nested (2,4,8)"]
    lines.append("-" * 78)
    # Partial normalization: dropping an unconstrained column is free.
    rel = mixed_period_relation(N_TUPLES, 3, [5, 7, 9], seed=4)
    projected = algebra.project(rel, ["X0", "X1"])
    lines.append(
        "partial normalization: projecting an unconstrained column out of "
        f"the (5,7,9) relation yields {len(projected)} tuples "
        f"(no split; global lcm would be {lcm_many([5, 7, 9])})"
    )
    ok = ok and len(projected) <= N_TUPLES
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_ablation_lcm_report(benchmark):
    lines = benchmark.pedantic(ablation_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in ablation_report():
        print(line)
