"""Table 2 — fixed-schema complexity of the algebra operations.

Paper's claims (schema fixed, N = number of tuples):

    union O(N)   cross-product O(N²)   intersection O(N²)   join O(N²)
    projection O(N)   emptiness O(N)   negation O(N^c)

The benchmark times each operation at a representative size, and the
report sweeps N, fits a power law to the timings, and prints a
Table 2-style comparison of claimed vs measured exponents.

Run standalone for the report:  python benchmarks/test_bench_table2_fixed_schema.py
"""

import pytest

from repro.analysis import fit_power_law, format_complexity_row, time_callable
from repro.core import algebra
from repro.core.emptiness import relation_is_empty

try:
    from benchmarks.workloads import normalized_relation
except ImportError:  # standalone: python benchmarks/<file>.py
    from workloads import normalized_relation

N_BENCH = 48
SWEEP = [8, 16, 32, 64, 128]

CLAIMS = {
    "union": ("O(N)", 1.0),
    "cross-product": ("O(N^2)", 2.0),
    "intersection": ("O(N^2)", 2.0),
    "join": ("O(N^2)", 2.0),
    "projection": ("O(N)", 1.0),
    "emptiness": ("O(N)", 1.0),
    "negation": ("O(N^c)", None),  # polynomial; degree depends on m
}


def _pair(n, seed=0):
    return (
        normalized_relation(n, 2, seed=seed),
        normalized_relation(n, 2, seed=seed + 1),
    )


def _operations():
    def do_union(n, seed=0):
        r1, r2 = _pair(n, seed)
        return lambda: algebra.union(r1, r2)

    def do_product(n, seed=0):
        r1 = normalized_relation(n, 1, seed=seed)
        r2 = algebra.rename(
            normalized_relation(n, 1, seed=seed + 1), {"X0": "Y0"}
        )
        return lambda: algebra.product(r1, r2)

    def do_intersection(n, seed=0):
        r1, r2 = _pair(n, seed)
        return lambda: algebra.intersect(r1, r2)

    def do_join(n, seed=0):
        r1 = algebra.rename(
            normalized_relation(n, 2, seed=seed), {"X0": "A", "X1": "B"}
        )
        r2 = algebra.rename(
            normalized_relation(n, 2, seed=seed + 1), {"X0": "B", "X1": "C"}
        )
        return lambda: algebra.join(r1, r2)

    def do_projection(n, seed=0):
        r = normalized_relation(n, 2, seed=seed)
        return lambda: algebra.project(r, ["X0"])

    def do_emptiness(n, seed=0):
        r = normalized_relation(n, 2, seed=seed)
        return lambda: relation_is_empty(r)

    def do_negation(n, seed=0):
        r = normalized_relation(n, 2, seed=seed, period=4)
        return lambda: algebra.complement(r)

    return {
        "union": do_union,
        "cross-product": do_product,
        "intersection": do_intersection,
        "join": do_join,
        "projection": do_projection,
        "emptiness": do_emptiness,
        "negation": do_negation,
    }


@pytest.mark.parametrize("op_name", list(CLAIMS))
def test_bench_operation(benchmark, op_name):
    """Time each Table 2 operation at N=48 tuples, m=2 columns."""
    op = _operations()[op_name](N_BENCH)
    benchmark(op)


def table2_report() -> list[str]:
    """Sweep N, fit exponents, and render the Table 2 comparison."""
    lines = [
        "Table 2 — fixed-schema complexity (m = 2, N swept over "
        f"{SWEEP})",
        "-" * 78,
    ]
    ops = _operations()
    for name, (claimed, expected) in CLAIMS.items():
        sizes = SWEEP if name != "negation" else [8, 16, 32, 64]
        times = []
        for n in sizes:
            op = ops[name](n)
            times.append(time_callable(op, repeat=3))
        fit = fit_power_law(sizes, times)
        if expected is None:
            verdict = "polynomial" if fit.exponent < 4.5 else "SUSPECT"
        else:
            verdict = "OK" if fit.exponent < expected + 0.8 else "SUSPECT"
        lines.append(format_complexity_row(name, claimed, fit, verdict))
    return lines


def test_table2_shape_report(benchmark):
    """The headline check: measured exponents match the paper's orders."""
    lines = benchmark.pedantic(table2_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert not any("SUSPECT" in line for line in lines)


if __name__ == "__main__":
    for line in table2_report():
        print(line)
