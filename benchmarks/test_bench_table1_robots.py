"""Table 1 — the robot-activities relation, exercised end to end.

The paper's only worked data table.  The report loads it verbatim,
verifies the concrete facts it denotes, and benchmarks the algebra on
it (selection, projection, join-with-self, complement of the temporal
part).

Run standalone:  python benchmarks/test_bench_table1_robots.py
"""

import pytest

from repro.core import algebra
from repro.query import Database

try:
    from benchmarks.workloads import robots_table1
except ImportError:
    from workloads import robots_table1


def test_bench_table1_selection(benchmark):
    rel = robots_table1()
    out = benchmark(lambda: algebra.select(rel, "t1 >= 0 & t2 <= 100"))
    assert not out.is_empty()


def test_bench_table1_projection(benchmark):
    rel = robots_table1()
    out = benchmark(lambda: algebra.project(rel, ["t1", "robot"]))
    assert out.contains([2], ["robot1"])


def test_bench_table1_query(benchmark):
    db = Database()
    db.register("Perform", robots_table1())
    query = 'EXISTS t1. EXISTS t2. Perform(t1, t2, r, "task2")'
    result = benchmark(lambda: db.query(query))
    assert result.contains([], ["robot2"])


def table1_report() -> list[str]:
    rel = robots_table1()
    lines = [
        "Table 1 — the robot relation, loaded and validated",
        "-" * 78,
    ]
    for gtuple in rel:
        lines.append(f"  {gtuple}")
    facts = [
        ("robot1 does task1 on [2, 4]", rel.contains([2, 4], ["robot1", "task1"])),
        ("... and on [2000000, 2000002]",
         rel.contains([2000000, 2000002], ["robot1", "task1"])),
        ("... but not on [-4, -2] (t1 >= -1)",
         not rel.contains([-4, -2], ["robot1", "task1"])),
        ("robot2 does task2 on [16, 17]",
         rel.contains([16, 17], ["robot2", "task2"])),
        ("... but not on [6, 7] (t1 >= 10)",
         not rel.contains([6, 7], ["robot2", "task2"])),
        ("robot2 does task1 on [-10, -7] (unbounded)",
         rel.contains([-10, -7], ["robot2", "task1"])),
    ]
    ok = True
    lines.append("")
    for text, verdict in facts:
        ok = ok and verdict
        lines.append(f"  {text}: {verdict}")
    # Start times of task2 within the first few cycles:
    starts = algebra.project(
        algebra.select_data(rel, "task", "task2"), ["t1"]
    )
    observed = sorted(x for (x,) in starts.snapshot(0, 40))
    lines.append(f"  task2 start times in [0, 40]: {observed}")
    ok = ok and observed == [16, 26, 36]
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_table1_report(benchmark):
    lines = benchmark.pedantic(table1_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in table1_report():
        print(line)
