"""Theorem 3.5 — nonemptiness of a generalized relation is PTIME.

The report sweeps both complexity parameters: the tuple count N (claimed
O(N) fixed-schema) and the column count m (claimed polynomial under the
general measure), fitting growth exponents.  Worst-case inputs are used
for the N sweep — every tuple *empty*, so no early exit fires.

Run standalone:  python benchmarks/test_bench_thm35_emptiness.py
"""

import pytest

from repro.analysis import fit_power_law, time_callable
from repro.core.emptiness import relation_is_empty
from repro.core.relations import GeneralizedRelation, Schema

try:
    from benchmarks.workloads import normalized_relation
except ImportError:
    from workloads import normalized_relation

N_SWEEP = [8, 16, 32, 64, 128]
M_SWEEP = [1, 2, 3, 4, 5]


def _all_empty_relation(n: int, arity: int = 2) -> GeneralizedRelation:
    """N tuples, each empty — the no-early-exit worst case for emptiness.

    Each tuple is satisfiable over the reals (so the tuples are distinct
    and the decision cannot shortcut on the constraint system alone) but
    holds no lattice point: ``X0 ∈ 6Z`` boxed into ``[6i+1, 6i+5]``.
    """
    schema = Schema.make(temporal=[f"X{i}" for i in range(arity)])
    out = GeneralizedRelation.empty(schema)
    for i in range(n):
        out.add_tuple(
            ["6n"] * arity, f"X0 >= {6 * i + 1} & X0 <= {6 * i + 5}"
        )
    assert len(out) == n
    return out


def test_bench_emptiness_nonempty_input(benchmark):
    """Emptiness with early exit (common case)."""
    rel = normalized_relation(64, 2, seed=5)
    assert benchmark(lambda: relation_is_empty(rel)) is False


def test_bench_emptiness_worst_case(benchmark):
    """Emptiness with no early exit (all tuples empty)."""
    rel = _all_empty_relation(64)
    assert benchmark(lambda: relation_is_empty(rel)) is True


def thm35_report() -> list[str]:
    lines = [
        "Theorem 3.5 — emptiness is PTIME (O(N) fixed-schema, "
        "polynomial in m generally)",
        "-" * 78,
    ]
    times_n = []
    for n in N_SWEEP:
        rel = _all_empty_relation(n)
        times_n.append(time_callable(lambda: relation_is_empty(rel), repeat=3))
    fit_n = fit_power_law(N_SWEEP, times_n)
    lines.append(
        f"  N sweep {N_SWEEP} (m=2, all-empty worst case): {fit_n}"
    )
    ok = fit_n.exponent < 1.6
    times_m = []
    for m in M_SWEEP:
        rel = _all_empty_relation(24, arity=m)
        times_m.append(time_callable(lambda: relation_is_empty(rel), repeat=3))
    fit_m = fit_power_law(M_SWEEP, times_m)
    lines.append(f"  m sweep {M_SWEEP} (N=24): {fit_m}")
    ok = ok and fit_m.exponent < 4.0  # polynomial in m (DBM closure is m^3)
    lines.append(
        f"verdict: {'OK — linear in N, polynomial in m' if ok else 'SUSPECT'}"
    )
    return lines


def test_thm35_report(benchmark):
    lines = benchmark.pedantic(thm35_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert "OK" in lines[-1]


if __name__ == "__main__":
    for line in thm35_report():
        print(line)
