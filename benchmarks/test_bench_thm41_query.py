"""Theorem 4.1 — query evaluation is PTIME under data complexity.

Data complexity fixes the query and grows the database.  The report
runs a fixed yes/no query (an Example 4.1-style interval property) over
schedule databases of increasing tuple count and fits the growth
exponent, which must be polynomial (and is low in practice).

Run standalone:  python benchmarks/test_bench_thm41_query.py
"""

import pytest

from repro.analysis import fit_power_law, time_callable
from repro.query import Database

try:
    from benchmarks.workloads import schedule_database
except ImportError:
    from workloads import schedule_database

N_SWEEP = [2, 4, 8, 16, 32]

# Fixed query: "is there a service that departs and, before it arrives,
# some other departure happens?" — a join-and-compare query with an
# existential block, plus a universal sanity property.
QUERY_EXISTS = (
    "EXISTS d1. EXISTS a1. EXISTS s1. EXISTS d2. EXISTS a2. EXISTS s2. "
    "Train(d1, a1, s1) & Train(d2, a2, s2) & d1 < d2 & d2 < a1"
)
QUERY_FORALL = (
    "FORALL d. FORALL a. FORALL s. Train(d, a, s) -> d < a"
)


def _db(n: int) -> Database:
    db = Database()
    db.register("Train", schedule_database(n, seed=7))
    return db


def test_bench_exists_query(benchmark):
    db = _db(16)
    assert benchmark(lambda: db.ask(QUERY_EXISTS)) is True


def test_bench_forall_query(benchmark):
    db = _db(16)
    assert benchmark(lambda: db.ask(QUERY_FORALL)) is True


def thm41_report() -> list[str]:
    lines = [
        "Theorem 4.1 — yes/no query evaluation is PTIME in database size",
        "-" * 78,
        f"fixed queries over schedule databases with N services, "
        f"N in {N_SWEEP}",
    ]
    ok = True
    for name, query in [("EXISTS-join", QUERY_EXISTS), ("FORALL", QUERY_FORALL)]:
        times = []
        for n in N_SWEEP:
            db = _db(n)
            times.append(time_callable(lambda: db.ask(query), repeat=2))
        fit = fit_power_law(N_SWEEP, times)
        cells = " ".join(f"{t * 1000:7.1f}ms" for t in times)
        lines.append(f"  {name:<12} {cells}   {fit}")
        ok = ok and fit.exponent < 3.5
    lines.append(
        f"verdict: {'OK — polynomial data complexity' if ok else 'SUSPECT'}"
    )
    return lines


def test_thm41_report(benchmark):
    lines = benchmark.pedantic(thm41_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert "OK" in lines[-1]


if __name__ == "__main__":
    for line in thm41_report():
        print(line)
