"""Ablation (Section 1 motivation) — symbolic vs materialized storage.

"It is preferable to state that something happens every year forever
than to state that it happens in 1989, 1990, 1991, ... 2090."

The report compares the generalized (symbolic) representation of a
periodic schedule against the classical finite engine materialized up to
a horizon H: storage cells, membership-query time, and join time, as H
grows.  The symbolic side is horizon-independent; the finite side grows
linearly in H and simply cannot answer beyond its horizon.

Run standalone:  python benchmarks/test_bench_ablation_baseline.py
"""

import pytest

from repro.analysis import time_callable
from repro.baseline import FiniteRelation
from repro.core import algebra

try:
    from benchmarks.workloads import schedule_database
except ImportError:
    from workloads import schedule_database

HORIZONS = [600, 6_000, 60_000]
N_SERVICES = 4


def test_bench_symbolic_membership(benchmark):
    rel = schedule_database(N_SERVICES, seed=11)
    probe = next(iter(rel.enumerate(0, 200)))
    temporal, data = rel.split_point(probe)
    assert benchmark(lambda: rel.contains(temporal, data)) is True


def test_bench_materialized_membership(benchmark):
    rel = schedule_database(N_SERVICES, seed=11)
    finite = FiniteRelation.materialize(rel, 0, HORIZONS[0])
    probe = next(iter(finite))
    assert benchmark(lambda: finite.contains(probe)) is True


def baseline_report() -> list[str]:
    rel = schedule_database(N_SERVICES, seed=11)
    sym_cells = sum(
        len(t.lrps) + len(list(t.dbm.iter_bounds())) + len(t.data)
        for t in rel
    )
    probe = next(iter(rel.enumerate(0, 200)))
    temporal, data = rel.split_point(probe)
    sym_time = time_callable(lambda: rel.contains(temporal, data), repeat=5)
    lines = [
        "Ablation — infinite symbolic representation vs finite horizon "
        f"materialization ({N_SERVICES} periodic services)",
        "-" * 78,
        f"{'representation':<22} {'storage cells':>14} "
        f"{'membership':>12} {'covers t=10^9?':>15}",
        f"{'generalized (symbolic)':<22} {sym_cells:>14} "
        f"{sym_time * 1e6:>10.1f}us {'yes':>15}",
    ]
    far_future = 10**9 * 60
    ok = rel.contains(
        [temporal[0] + far_future, temporal[1] + far_future], data
    )
    for horizon in HORIZONS:
        finite = FiniteRelation.materialize(rel, 0, horizon)
        f_probe = next(iter(finite))
        f_time = time_callable(lambda: finite.contains(f_probe), repeat=5)
        lines.append(
            f"{'materialized H=' + str(horizon):<22} "
            f"{finite.storage_cells():>14} "
            f"{f_time * 1e6:>10.1f}us {'no':>15}"
        )
        ok = ok and finite.storage_cells() > sym_cells
    lines.append("-" * 78)
    lines.append(
        "shape: symbolic storage is O(1) in the horizon and answers "
        "arbitrarily distant queries; materialized storage grows "
        "linearly with the horizon and is blind past it."
    )
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_baseline_report(benchmark):
    lines = benchmark.pedantic(baseline_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in baseline_report():
        print(line)
