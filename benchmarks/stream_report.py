"""Consolidated-report wrapper for the streaming-ingest benchmark.

Runs :mod:`repro.deductive.bench` (smoke sizes, so the consolidated
run stays quick), writes the machine-readable ``BENCH_stream.json``
next to the repository root, and returns the human-readable digest.
The full-size run is ``python -m repro.deductive.bench`` (or
``make stream-bench``).
"""

from __future__ import annotations

import json
import pathlib

from repro.deductive.bench import run_stream_bench

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def stream_report(smoke: bool = True) -> list[str]:
    """Regenerate ``BENCH_stream.json``; return the digest lines."""
    report = run_stream_bench(smoke=smoke)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    ingest = report["ingest"]
    refresh = report["refresh"]
    equivalence = report["equivalence"]
    summary = report["summary"]
    lines = ["Streaming ingest: incremental view maintenance vs recompute"]
    lines.append(
        f"  ingest: {ingest['tuples']} tuples in {ingest['seconds']}s "
        f"({ingest['tuples_per_s']} tuples/s; batch p50 "
        f"{ingest['batch_p50_ms']}ms p99 {ingest['batch_p99_ms']}ms)"
    )
    lines.append(
        f"  view refresh: incremental {refresh['incremental_mean_ms']}ms "
        f"vs recompute {refresh['recompute_mean_ms']}ms mean "
        f"(x{refresh['speedup']}, {refresh['samples']} batches)"
    )
    lines.append(
        f"  incremental == recompute on "
        f"{equivalence['checked_batches']}/{equivalence['checked_batches']}"
        f" batches: {'OK' if equivalence['ok'] else 'DISAGREE'}"
    )
    lines.append(
        "summary.ok: OK"
        if summary["ok"]
        else "summary.ok: SUSPECT — a streaming gate failed"
    )
    lines.append(f"(JSON written to {OUTPUT.name})")
    return lines


if __name__ == "__main__":
    print("\n".join(stream_report()))
