"""Example 2.4 — the Liège-Brussels schedule and the interval argument.

The paper's argument: with temporal arity 1 (separate Leaving/Arriving
predicates plus repeating points) the schedule *wrongly* admits a train
leaving at h+1:46 and arriving at h+1:50; with temporal arity 2 the
pairing is exact.  The report builds both encodings and exhibits the
spurious conclusion in the unary one and its absence in the interval
one, then benchmarks queries on the interval schedule.

Run standalone:  python benchmarks/test_bench_example24_trains.py
"""

import pytest

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.intervals import at_time, liege_brussels_schedule
from repro.query import Database


def point_based_encoding():
    """The flawed arity-1 encoding: Leaving(t, service), Arriving(t, service)."""
    leaving = GeneralizedRelation.empty(
        Schema.make(temporal=["t"], data=["service"])
    )
    leaving.add_tuple(["2 + 60n"], data=["slow"])
    leaving.add_tuple(["46 + 60n"], data=["express"])
    arriving = GeneralizedRelation.empty(
        Schema.make(temporal=["t"], data=["service"])
    )
    arriving.add_tuple(["20 + 60n"], data=["slow"])  # 80 mod 60
    arriving.add_tuple(["50 + 60n"], data=["express"])
    return leaving, arriving


def test_bench_schedule_query(benchmark):
    db = Database()
    db.register("Train", liege_brussels_schedule())
    query = (
        'EXISTS d1. EXISTS a1. EXISTS d2. EXISTS a2. '
        'Train(d1, a1, "slow") & Train(d2, a2, "express") '
        "& d2 >= d1 & d2 < a1"
    )
    assert benchmark(lambda: db.ask(query)) is True


def test_bench_membership_far_future(benchmark):
    trains = liege_brussels_schedule()
    dep = at_time(7, 2, day=100_000)
    assert benchmark(lambda: trains.contains([dep, dep + 78], ["slow"])) is True


def example24_report() -> list[str]:
    lines = [
        "Example 2.4 — hourly Liège-Brussels schedule: intervals vs points",
        "-" * 78,
    ]
    leaving, arriving = point_based_encoding()
    # The spurious conclusion of the unary encoding: an express "leaving
    # at 7:46 and arriving at 7:50" — both facts hold separately.
    spurious_leave = leaving.contains([at_time(7, 46)], ["express"])
    spurious_arrive = arriving.contains([at_time(7, 50)], ["express"])
    lines.append(
        "point-based encoding: Leaving(7:46, express) = "
        f"{spurious_leave}; Arriving(7:50, express) = {spurious_arrive}"
    )
    lines.append(
        "  -> the 4-minute phantom trip is derivable: "
        f"{spurious_leave and spurious_arrive}"
    )
    ok = spurious_leave and spurious_arrive
    trains = liege_brussels_schedule()
    phantom = trains.contains(
        [at_time(7, 46), at_time(7, 50)], ["express"]
    )
    real = trains.contains([at_time(7, 46), at_time(8, 50)], ["express"])
    lines.append(
        f"interval encoding: Train(7:46, 7:50, express) = {phantom}; "
        f"Train(7:46, 8:50, express) = {real}"
    )
    ok = ok and not phantom and real
    # Symbolic query: overlap of slow and express service intervals.
    db = Database()
    db.register("Train", trains)
    overlap = db.ask(
        'EXISTS d1. EXISTS a1. EXISTS d2. EXISTS a2. '
        'Train(d1, a1, "slow") & Train(d2, a2, "express") '
        "& d2 >= d1 & d2 < a1"
    )
    lines.append(f"slow/express trips ever overlap in time: {overlap}")
    ok = ok and overlap
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_example24_report(benchmark):
    lines = benchmark.pedantic(example24_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in example24_report():
        print(line)
