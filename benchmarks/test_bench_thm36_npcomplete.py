"""Theorem 3.6 — nonemptiness of complement is NP-complete.

The paper reduces 3-SAT to complement-nonemptiness.  The report runs
that reduction on random 3-SAT instances at the hard clause/variable
ratio (~4.26), confirms agreement with a conventional DPLL solver on
every instance, and shows the cost growth of the database route as the
variable count rises — the exponential shadow of NP-hardness — while
the PTIME emptiness check of the *uncomplemented* relation stays flat.

Run standalone:  python benchmarks/test_bench_thm36_npcomplete.py
"""

import pytest

from repro.analysis import time_callable
from repro.core.emptiness import relation_is_empty
from repro.sat import (
    instance_to_relation,
    random_3sat,
    solve,
    solve_via_complement,
)

RATIO = 4.26
N_VARS_SWEEP = [4, 6, 8, 10]
SEEDS_PER_SIZE = 3


def _instances(n_vars: int):
    n_clauses = max(1, round(RATIO * n_vars))
    return [
        random_3sat(n_vars, n_clauses, seed=seed)
        for seed in range(SEEDS_PER_SIZE)
    ]


def test_bench_reduction_small(benchmark):
    """Time the full decide-by-complement pipeline at 6 variables."""
    insts = _instances(6)

    def run():
        return [solve_via_complement(inst) for inst in insts]

    results = benchmark(run)
    for inst, model in zip(insts, results):
        assert (model is None) == (solve(inst) is None)


def test_bench_dpll_reference(benchmark):
    """Time the DPLL reference on the same instances."""
    insts = _instances(6)
    benchmark(lambda: [solve(inst) for inst in insts])


def thm36_report() -> list[str]:
    lines = [
        "Theorem 3.6 — complement-nonemptiness is NP-complete "
        f"(random 3-SAT at ratio {RATIO})",
        "-" * 78,
        f"{'vars':>5} {'clauses':>8} {'agreement':>10} "
        f"{'via-complement':>15} {'emptiness of r':>15} {'DPLL':>10}",
    ]
    ok = True
    for n_vars in N_VARS_SWEEP:
        insts = _instances(n_vars)
        agree = 0
        t_complement = t_emptiness = t_dpll = 0.0
        for inst in insts:
            model_db = solve_via_complement(inst)
            model_ref = solve(inst)
            if (model_db is None) == (model_ref is None):
                agree += 1
            if model_db is not None and not inst.holds(model_db):
                agree = -999
            t_complement += time_callable(
                lambda i=inst: solve_via_complement(i), repeat=1
            )
            relation = instance_to_relation(inst)
            t_emptiness += time_callable(
                lambda r=relation: relation_is_empty(r), repeat=1
            )
            t_dpll += time_callable(lambda i=inst: solve(i), repeat=1)
        ok = ok and agree == len(insts)
        lines.append(
            f"{n_vars:>5} {round(RATIO * n_vars):>8} "
            f"{agree}/{len(insts):>7} "
            f"{t_complement / len(insts) * 1000:>13.1f}ms "
            f"{t_emptiness / len(insts) * 1000:>13.2f}ms "
            f"{t_dpll / len(insts) * 1000:>8.2f}ms"
        )
    lines.append("-" * 78)
    lines.append(
        "shape: plain emptiness (Thm 3.5, PTIME) stays flat; the "
        "complement route grows steeply with the variable count, and "
        "always agrees with DPLL."
    )
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_thm36_report(benchmark):
    lines = benchmark.pedantic(thm36_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in thm36_report():
        print(line)
