"""Synthetic workload generators for the benchmark harness.

The paper's complexity results (Tables 2 and 3, Theorems 3.5/3.6/4.1)
are stated over *normalized* databases with N tuples and m columns.
These generators produce random generalized relations with controlled
N, m, and period structure, seeded for reproducibility.
"""

from __future__ import annotations

import random

from repro.core.constraints import parse_atoms
from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple


def normalized_relation(
    n_tuples: int,
    arity: int,
    period: int = 6,
    seed: int = 0,
    constraint_rate: float = 0.7,
    bound_range: int = 20,
) -> GeneralizedRelation:
    """A random relation already in normal form (common period).

    Every lrp has the same ``period`` with a random offset; constraints
    are random difference/unary bounds.  This matches the appendix's
    complexity setting, where analysis assumes normalized inputs.
    """
    rng = random.Random(seed)
    schema = Schema.make(temporal=[f"X{i}" for i in range(arity)])
    out = GeneralizedRelation.empty(schema)
    while len(out) < n_tuples:
        lrps = tuple(
            LRP.make(rng.randrange(period), period) for _ in range(arity)
        )
        dbm = DBM(arity)
        for i in range(arity):
            if rng.random() < constraint_rate:
                kind = rng.random()
                bound = rng.randint(-bound_range, bound_range)
                if kind < 0.4 and arity >= 2:
                    j = rng.randrange(arity)
                    if j != i:
                        dbm.add_difference(i, j, bound)
                        continue
                if kind < 0.7:
                    dbm.add_upper(i, bound)
                else:
                    dbm.add_lower(i, bound)
        out.add(GeneralizedTuple(lrps, dbm))
    return out


def mixed_period_relation(
    n_tuples: int,
    arity: int,
    periods: list[int],
    seed: int = 0,
) -> GeneralizedRelation:
    """A relation whose lrps draw from ``periods`` (not normalized)."""
    rng = random.Random(seed)
    schema = Schema.make(temporal=[f"X{i}" for i in range(arity)])
    out = GeneralizedRelation.empty(schema)
    while len(out) < n_tuples:
        lrps = tuple(
            LRP.make(rng.randint(-10, 10), rng.choice(periods))
            for _ in range(arity)
        )
        out.add(GeneralizedTuple(lrps, DBM(arity)))
    return out


def schedule_database(n_services: int, seed: int = 0) -> GeneralizedRelation:
    """A Train-style schedule with ``n_services`` periodic services."""
    rng = random.Random(seed)
    schema = Schema.make(temporal=["dep", "arr"], data=["service"])
    out = GeneralizedRelation.empty(schema)
    for i in range(n_services):
        start = rng.randrange(60)
        duration = rng.randint(10, 90)
        out.add_tuple(
            [f"{start} + 60n", f"{start + duration} + 60n"],
            f"dep = arr - {duration}",
            [f"svc{i}"],
        )
    return out


def robots_table1() -> GeneralizedRelation:
    """The paper's Table 1, verbatim."""
    schema = Schema.make(temporal=["t1", "t2"], data=["robot", "task"])
    out = GeneralizedRelation.empty(schema)
    out.add_tuple(
        ["2 + 2n", "4 + 2n"], "t1 = t2 - 2 & t1 >= -1", ["robot1", "task1"]
    )
    out.add_tuple(
        ["6 + 10n", "7 + 10n"], "t1 = t2 - 1 & t1 >= 10", ["robot2", "task2"]
    )
    out.add_tuple(["10n", "3 + 10n"], "t1 = t2 - 3", ["robot2", "task1"])
    return out


def figure2_relation() -> GeneralizedRelation:
    """The Figure 2 / Example 3.2 tuple, as a relation."""
    out = GeneralizedRelation.empty(Schema.make(temporal=["X1", "X2"]))
    out.add_tuple(
        ["4n + 3", "8n + 1"], "X1 >= X2 & X1 <= X2 + 5 & X2 >= 2"
    )
    return out
