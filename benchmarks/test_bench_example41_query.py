"""Example 4.1 — the paper's showcase first-order query, end to end.

The formula (two robots x, y such that if x performs task2 over an
interval of length >= 5, then y performs nothing during any part of it)
mixes every feature of the language: both sorts, the successor
function, quantifier alternation (∃∃∃∃∀∀∀), implication and negation.

A faithful reproduction also surfaces a subtlety: the formula *as
printed* is vacuously true in every database — the interval bounds t1,
t2 are existentially quantified outside the implication, so choosing
``t2 < t1 + 5`` falsifies the antecedent and satisfies everything.  The
report evaluates (a) the literal formula and (b) the evidently intended
*strict* reading with the antecedent pulled out of the implication, and
cross-checks both against independent brute-force evaluation.

Run standalone:  python benchmarks/test_bench_example41_query.py
"""

import pytest

from repro.query import Database

try:
    from benchmarks.workloads import robots_table1
except ImportError:
    from workloads import robots_table1

LITERAL_4_1 = """
EXISTS x. EXISTS y. EXISTS t1. EXISTS t2.
FORALL t3. FORALL t4. FORALL z.
  (Perform(t1, t2, x, "task2")
     & t1 <= t3 & t3 <= t4 & t4 <= t2 & t1 + 5 <= t2)
  -> ~Perform(t3, t4, y, z)
"""

STRICT_4_1 = """
EXISTS x. EXISTS y. EXISTS t1. EXISTS t2.
  Perform(t1, t2, x, "task2") & t1 + 5 <= t2 &
  (FORALL t3. FORALL t4. FORALL z.
     (t1 <= t3 & t3 <= t4 & t4 <= t2) -> ~Perform(t3, t4, y, z))
"""


def _db(extended: bool) -> Database:
    db = Database()
    db.register("Perform", robots_table1())
    if extended:
        db.relation("Perform").add_tuple(
            ["20n", "6 + 20n"], "t1 = t2 - 6", ["robot3", "task2"]
        )
    return db


def _brute_force_strict(db: Database) -> bool:
    """Windowed reference for the strict reading.

    All periods divide 20, so witnesses (if any) occur with t1 within a
    couple of cycles of the origin; [-40, 40] decides.
    """
    perform = db.relation("Perform")
    snapshot = perform.snapshot(-60, 60)
    robots = {r for (_a, _b, r, _k) in snapshot}
    busy = {(a, b, r) for (a, b, r, _k) in snapshot}
    task2 = {(a, b, r) for (a, b, r, k) in snapshot if k == "task2"}
    for t1 in range(-40, 40):
        for t2 in range(t1 + 5, 40):
            if not any((t1, t2, x) in task2 for x in robots):
                continue
            for y in robots:
                if not any(
                    (t3, t4, y) in busy
                    for t3 in range(t1, t2 + 1)
                    for t4 in range(t3, t2 + 1)
                ):
                    return True
    return False


def test_bench_example41_literal(benchmark):
    db = _db(extended=True)
    query = db.parse(LITERAL_4_1)
    assert benchmark(lambda: db.ask(query)) is True


def test_bench_example41_strict(benchmark):
    db = _db(extended=True)
    query = db.parse(STRICT_4_1)
    assert benchmark(lambda: db.ask(query)) is True


def example41_report() -> list[str]:
    lines = [
        "Example 4.1 — ∃x∃y∃t1∃t2 ∀t3∀t4∀z "
        '(Perform(t1,t2,x,"task2") ∧ t1≤t3≤t4≤t2 ∧ t1+5≤t2) '
        "⊃ ¬Perform(t3,t4,y,z)",
        "-" * 78,
    ]
    ok = True
    for label, extended in [("Table 1 as published", False),
                            ("with a long task2 interval", True)]:
        db = _db(extended)
        literal = db.ask(LITERAL_4_1)
        strict = db.ask(STRICT_4_1)
        reference = _brute_force_strict(db)
        # The literal formula is vacuously true in every database: the
        # existential t1, t2 can falsify the antecedent.
        ok = ok and literal is True and strict == reference
        lines.append(
            f"  {label:<30} literal: {literal}   strict reading: {strict} "
            f"(brute force: {reference})"
        )
    lines.append(
        "note: the printed formula is vacuously satisfiable (pick "
        "t2 < t1 + 5); the strict reading pulls the antecedent out of "
        "the implication and matches brute force on both databases."
    )
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_example41_report(benchmark):
    lines = benchmark.pedantic(example41_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in example41_report():
        print(line)
