"""Consolidated-report wrapper for the optimizer benchmark.

Runs :mod:`repro.optimize.bench` (smoke sizes, so the consolidated run
stays quick), writes the machine-readable ``BENCH_opt.json`` next to
the repository root, and returns the human-readable digest.  The
full-size run is ``python -m repro.optimize.bench`` (or
``make opt-bench``).
"""

from __future__ import annotations

import json
import pathlib

from repro.optimize.bench import run_opt_bench

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_opt.json"


def opt_report(smoke: bool = True) -> list[str]:
    """Regenerate ``BENCH_opt.json``; return the digest lines."""
    report = run_opt_bench(smoke=smoke)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    lines = ["Optimizer: MINIMIZE/MAXIMIZE exactness and throughput"]
    for row in report["scenarios"]:
        lines.append(
            f"  scenario {row['name']}: {row['status']} {row['value']} "
            f"(oracle {row['oracle']}, {row['ms']}ms) "
            f"{'ok' if row['ok'] else 'FAIL'}"
        )
    corpus = report["corpus"]
    lines.append(
        f"  corpus parity: {corpus['parity_failures']} failures in "
        f"{corpus['parity_checks']} checks "
        f"(statuses {corpus['statuses']})"
    )
    for row in report["throughput"]:
        lines.append(
            f"  throughput {row['objective']}: {row['tuples_per_s']}/s "
            f"({row['probes_per_tuple']} probes/tuple)"
        )
    summary = report["summary"]
    lines.append(
        "summary.ok: OK"
        if summary["ok"]
        else "summary.ok: SUSPECT — an optimizer exactness gate failed"
    )
    lines.append(f"(JSON written to {OUTPUT.name})")
    return lines


if __name__ == "__main__":
    print("\n".join(opt_report()))
