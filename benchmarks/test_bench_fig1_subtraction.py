"""Figure 1 — the tuple-subtraction decomposition.

The paper computes ``t1 - t2`` as ``(t1 - t2*) ∪ (t̄2 ∩ t1)`` (Figure 1):
the part of ``t1`` outside ``t2``'s free extension, plus the part on the
shared free extension violating ``t2``'s constraints.  The report
validates the identity pointwise on seeded random tuple pairs and
reports how many output tuples the decomposition produces.

Run standalone:  python benchmarks/test_bench_fig1_subtraction.py
"""

import random

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.helpers import random_tuple  # noqa: E402

SCHEMA = Schema.make(temporal=["X1", "X2"])
WINDOW = (-9, 9)
CASES = 60


def _random_pair(seed: int):
    rng = random.Random(seed)
    return random_tuple(rng, 2), random_tuple(rng, 2)


def test_bench_tuple_subtraction(benchmark):
    """Time the Figure 1 decomposition over a batch of tuple pairs."""
    pairs = [_random_pair(seed) for seed in range(CASES)]

    def run():
        out = 0
        for t1, t2 in pairs:
            out += len(algebra.subtract_tuples(t1, t2))
        return out

    total = benchmark(run)
    assert total >= 0


def figure1_report() -> list[str]:
    lines = [
        f"Figure 1 — t1 - t2 = (t1 - t2*) ∪ (t̄2 ∩ t1), validated on "
        f"{CASES} seeded random tuple pairs over window {WINDOW}",
        "-" * 78,
    ]
    checked = 0
    max_pieces = 0
    for seed in range(CASES):
        t1, t2 = _random_pair(seed)
        pieces = algebra.subtract_tuples(t1, t2)
        max_pieces = max(max_pieces, len(pieces))
        expected = set(t1.enumerate(*WINDOW)) - set(t2.enumerate(*WINDOW))
        covered = set()
        for piece in pieces:
            covered |= set(piece.enumerate(*WINDOW))
        if covered != expected:
            lines.append(f"MISMATCH at seed {seed}")
        checked += 1
    lines.append(
        f"pairs checked: {checked}; identity held on all; "
        f"max decomposition size: {max_pieces} tuples"
    )
    lines.append(
        "verdict: "
        + (
            "OK"
            if not any("MISMATCH" in line for line in lines)
            else "SUSPECT"
        )
    )
    return lines


def test_figure1_identity_report(benchmark):
    lines = benchmark.pedantic(figure1_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert not any("MISMATCH" in line for line in lines)


if __name__ == "__main__":
    for line in figure1_report():
        print(line)
