"""Consolidated-report wrapper for the optimization-layer benchmark.

Runs :mod:`repro.perf.bench` (smoke sizes, so the consolidated run stays
quick), writes the machine-readable ``BENCH_perf.json`` next to the
repository root, and returns the human-readable comparison table.  The
full-size run is ``python -m repro.perf.bench`` (or ``make bench``).
"""

from __future__ import annotations

import json
import pathlib

from repro.perf.bench import format_report, run_perf_comparison

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def perf_report(smoke: bool = True) -> list[str]:
    """Regenerate ``BENCH_perf.json``; return the comparison table."""
    report = run_perf_comparison(smoke=smoke)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    lines = ["Optimization layer: naive vs optimized vs parallel"]
    lines.extend(format_report(report))
    lines.append(f"(JSON written to {OUTPUT.name})")
    return lines


if __name__ == "__main__":
    print("\n".join(perf_report()))
