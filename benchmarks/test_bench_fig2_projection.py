"""Figure 2 — the projection problem: real elimination is unsound over Z.

The paper's example tuple::

    [4n+3, 8n+1] ∧ X1 >= X2 ∧ X1 <= X2 + 5 ∧ X2 >= 2

has real-projection points 3, 7, 15, 23 on X1 "even though there are no
corresponding points in the tuple".  The report reproduces exactly this:
the naive (real) projection admits the spurious points, the
normalization-based integer projection rejects them, and the true
projection is ``{8n + 3 : X1 >= 11}``.

Run standalone:  python benchmarks/test_bench_fig2_projection.py
"""

from repro.core import algebra
from repro.core.lrp import LRP

try:
    from benchmarks.workloads import figure2_relation
except ImportError:
    from workloads import figure2_relation

SPURIOUS = [3, 7, 15, 23]
TRUE_POINTS = [11, 19, 27, 35]


def test_bench_integer_projection(benchmark):
    """Time the normalization-based projection of the Figure 2 tuple."""
    rel = figure2_relation()
    result = benchmark(lambda: algebra.project(rel, ["X1"]))
    points = sorted(x for (x,) in result.snapshot(0, 40))
    assert points == TRUE_POINTS


def test_bench_naive_real_projection(benchmark):
    """Time the naive DBM projection (the unsound-over-lattices one)."""
    rel = figure2_relation()
    (gtuple,) = rel.tuples

    def naive():
        return gtuple.dbm.copy().project([0])

    naive_dbm = benchmark(naive)
    # The naive result admits every spurious point (they satisfy the
    # relaxed constraints and lie on the 4n+3 lattice).
    for x in SPURIOUS:
        assert gtuple.lrps[0].contains(x)
        assert naive_dbm.satisfied_by([x])


def figure2_report() -> list[str]:
    rel = figure2_relation()
    (gtuple,) = rel.tuples
    naive_dbm = gtuple.dbm.copy().project([0])
    exact = algebra.project(rel, ["X1"])
    lines = [
        "Figure 2 — projection of [4n+3, 8n+1] ∧ X1>=X2 ∧ X1<=X2+5 ∧ X2>=2 "
        "onto X1",
        "-" * 78,
        f"{'x':>4}  {'on 4n+3 lattice':>16}  {'naive (real) proj':>18}  "
        f"{'integer-exact proj':>19}  {'in the tuple':>13}",
    ]
    ok = True
    for x in SPURIOUS + TRUE_POINTS:
        on_lattice = gtuple.lrps[0].contains(x)
        naive = on_lattice and naive_dbm.satisfied_by([x])
        integer = exact.contains([x])
        # ground truth: does any X2 complete x into the tuple?
        truth = any(
            gtuple.contains([x, y]) for y in range(x - 10, x + 10)
        )
        lines.append(
            f"{x:>4}  {on_lattice!s:>16}  {naive!s:>18}  "
            f"{integer!s:>19}  {truth!s:>13}"
        )
        if integer != truth:
            ok = False
        if x in SPURIOUS and not naive:
            ok = False
    (projected,) = exact.tuples
    lines.append("-" * 78)
    lines.append(f"integer-exact projection: {projected}")
    expected_paper = "[3 + 8n] with X1 >= 11"
    lines.append(f"paper's answer:           {expected_paper}")
    ok = ok and projected.lrps[0] == LRP.make(3, 8)
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_figure2_report(benchmark):
    lines = benchmark.pedantic(figure2_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in figure2_report():
        print(line)
