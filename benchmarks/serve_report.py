"""Consolidated-report wrapper for the serving-layer benchmark.

Runs :mod:`repro.serve.bench` (smoke sizes, so the consolidated run
stays quick), writes the machine-readable ``BENCH_serve.json`` next to
the repository root, and returns the human-readable digest.  The
full-size run is ``python -m repro.serve.bench`` (or
``make serve-bench``).
"""

from __future__ import annotations

import json
import pathlib

from repro.serve.bench import run_serve_bench

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def serve_report(smoke: bool = True) -> list[str]:
    """Regenerate ``BENCH_serve.json``; return the digest lines."""
    report = run_serve_bench(smoke=smoke)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    commits = report["commits"]
    queries = report["queries"]
    rvw = report["reader_vs_writer"]
    summary = report["summary"]
    lines = ["Serving layer: group commit vs sequential, MVCC reads"]
    lines.append(
        f"  commits/s: sequential {commits['sequential_commits_per_s']} "
        f"vs group {commits['group_commits_per_s']} "
        f"(x{commits['speedup']}, mean group size "
        f"{commits['mean_group_size']})"
    )
    lines.append(
        f"  served queries: p50 {queries['p50_ms']}ms "
        f"p99 {queries['p99_ms']}ms ({queries['queries_per_s']}/s)"
    )
    lines.append(
        f"  reader during bulk commit: max {rvw['reader_max_ms']}ms "
        f"over a {rvw['bulk_commit_s']}s commit "
        f"(idle p50 {rvw['reader_idle_p50_ms']}ms); "
        f"nonblocking={rvw['nonblocking_ok']} "
        f"isolation={rvw['snapshot_isolation_ok']}"
    )
    lines.append(
        f"  single-writer lock: second writer rejected = "
        f"{report['lock']['second_writer_rejected']}"
    )
    lines.append(
        "summary.ok: OK"
        if summary["ok"]
        else "summary.ok: SUSPECT — a serving-layer gate failed"
    )
    lines.append(f"(JSON written to {OUTPUT.name})")
    return lines


if __name__ == "__main__":
    print("\n".join(serve_report()))
