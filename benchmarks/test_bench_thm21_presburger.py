"""Theorem 2.1 — unary Presburger ⇔ weak lrp definable.

The report compiles a battery of unary Presburger formulas (basic forms
and boolean combinations) into restricted generalized relations, checks
each against direct formula evaluation over a window, and round-trips
relations back to formulas (the reverse direction).

Run standalone:  python benchmarks/test_bench_thm21_presburger.py
"""

import random

from repro.presburger import (
    Rel,
    comparison,
    compile_unary,
    congruence,
    conj,
    disj,
    neg,
    parse_formula,
    relation_to_formula,
    solutions,
)

WINDOW = (-24, 24)
N_RANDOM = 40

FIXED_FORMULAS = [
    "3v = 6",
    "2v < 7",
    "2v > -7",
    "v = 1 mod 3",
    "2v = 3 mod 7",
    "v = 1 mod 3 & ~(v = 0 mod 2)",
    "v < 0 | v = 0 mod 5",
    "~(v = 0 mod 2 | v = 0 mod 3)",
]


def _random_formula(seed: int):
    rng = random.Random(seed)

    def atom():
        if rng.random() < 0.5:
            return comparison(
                {"v": rng.randint(-4, 4)},
                rng.choice(list(Rel)),
                rng.randint(-8, 8),
            )
        return congruence(
            {"v": rng.randint(1, 4)}, rng.randint(-4, 4), rng.randint(1, 6)
        )

    formula = atom()
    for _ in range(rng.randint(0, 3)):
        connective = rng.random()
        if connective < 0.33:
            formula = neg(formula)
        elif connective < 0.66:
            formula = conj(formula, atom())
        else:
            formula = disj(formula, atom())
    return formula


def test_bench_compile_unary(benchmark):
    """Time compiling the fixed unary formula battery."""
    formulas = [parse_formula(text) for text in FIXED_FORMULAS]

    def run():
        return [compile_unary(f, variable="v") for f in formulas]

    relations = benchmark(run)
    assert len(relations) == len(formulas)


def thm21_report() -> list[str]:
    lines = [
        "Theorem 2.1 — unary Presburger predicates are weak lrp definable",
        "-" * 78,
    ]
    ok = True
    for text in FIXED_FORMULAS:
        formula = parse_formula(text)
        rel = compile_unary(formula, variable="v")
        got = {x for (x,) in rel.snapshot(*WINDOW)}
        want = {x for (x,) in solutions(formula, ["v"], *WINDOW)}
        match = got == want
        ok = ok and match
        lines.append(
            f"  {text:<40} -> {len(rel)} tuple(s); window agrees: {match}"
        )
    agree = 0
    round_trips = 0
    for seed in range(N_RANDOM):
        formula = _random_formula(seed)
        rel = compile_unary(formula, variable="v")
        got = {x for (x,) in rel.snapshot(*WINDOW)}
        want = {x for (x,) in solutions(formula, ["v"], *WINDOW)}
        agree += got == want
        back = relation_to_formula(rel, variable="v")
        back_points = {x for (x,) in solutions(back, ["v"], *WINDOW)}
        round_trips += back_points == want
    lines.append(
        f"  random formulas: {agree}/{N_RANDOM} compile correctly, "
        f"{round_trips}/{N_RANDOM} round-trip (relation -> formula)"
    )
    ok = ok and agree == N_RANDOM and round_trips == N_RANDOM
    lines.append(f"verdict: {'OK' if ok else 'SUSPECT'}")
    return lines


def test_thm21_report(benchmark):
    lines = benchmark.pedantic(thm21_report, rounds=1, iterations=1)
    print()
    for line in lines:
        print(line)
    assert lines[-1].endswith("OK")


if __name__ == "__main__":
    for line in thm21_report():
        print(line)
