"""A deductive layer over the robot factory (Section 5's discussion).

The paper notes its database "does not exclude the eventual use of a
deductive layer" in the style of Chomicki & Imieliński.  This example
derives new infinite relations from Table 1 with Datalog rules —
including recursion (reachability through handovers) and stratified
negation (idle detection) — all over infinite periodic extensions.

Run:  python examples/factory_rules.py
"""

from repro.deductive import Program
from repro.query import Database

PROGRAM = """
# Which robots exist, derived from the activity log.
declare Robot(robot:D)
Robot(r) <- Perform(a, b, r, k)

# Instants at which a robot is busy (interval unfolding).
declare Busy(t:T, robot:D)
Busy(t, r) <- Perform(a, b, r, k) & a <= t & t <= b

# Direct handover: some robot finishes exactly when another starts.
declare Handover(t:T, src:D, dst:D)
Handover(t, r1, r2) <- Perform(a, t, r1, k1) & Perform(t, b, r2, k2) \\
    & ~(r1 = r2)

# Work can flow from r1 to r2 (transitively, through handovers).
declare Flows(src:D, dst:D)
Flows(r1, r2) <- Handover(t, r1, r2)
Flows(r1, r3) <- Flows(r1, r2) & Handover(t, r2, r3)

# Idle instants within the first cycle (stratified negation).
declare Idle(t:T, robot:D)
Idle(t, r) <- Robot(r) & t >= 0 & t <= 9 & \\
    ~(EXISTS a. EXISTS b. EXISTS k. Perform(a, b, r, k) & a <= t & t <= b)
"""


def main() -> None:
    db = Database()
    db.create("Perform", temporal=["t1", "t2"], data=["robot", "task"])
    perform = db.relation("Perform")
    perform.add_tuple(
        ["2 + 2n", "4 + 2n"], "t1 = t2 - 2 & t1 >= -1", ["robot1", "task1"]
    )
    perform.add_tuple(
        ["6 + 10n", "7 + 10n"], "t1 = t2 - 1 & t1 >= 10", ["robot2", "task2"]
    )
    perform.add_tuple(["10n", "3 + 10n"], "t1 = t2 - 3", ["robot2", "task1"])

    program = Program.from_text(PROGRAM)
    print("program rules:")
    for rule in program.rules:
        print("  ", rule)
    result = program.evaluate(db)

    print("\nRobot/1 (projection rule):")
    for point in result.relation("Robot").enumerate(0, 0):
        print("  ", point[0])

    busy = result.relation("Busy")
    print("\nBusy robots at t = 1000000..1000003:")
    for t in range(1000000, 1000004):
        names = [r for r in ("robot1", "robot2") if busy.contains([t], [r])]
        print(f"  t={t}: {', '.join(names) or '(none)'}")

    handover = result.relation("Handover")
    print("\nHandover instants in [0, 30]:")
    for point in sorted(handover.enumerate(0, 30)):
        print(f"  t={point[0]}: {point[1]} -> {point[2]}")

    flows = result.relation("Flows")
    print("\nWork flow (transitive closure over handovers):")
    for point in sorted(flows.enumerate(0, 0)):
        print(f"  {point[0]} ~> {point[1]}")

    idle = result.relation("Idle")
    print("\nIdle instants in the cycle [0, 9]:")
    for point in sorted(idle.enumerate(0, 9)):
        print(f"  t={point[0]}: {point[1]}")


if __name__ == "__main__":
    main()
