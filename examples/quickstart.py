"""Quickstart: linear repeating points, generalized relations, queries.

Run:  python examples/quickstart.py
"""

from repro import LRP, GeneralizedRelation, Schema
from repro.core import algebra
from repro.query import Database


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Linear repeating points: infinite sets, finitely represented.
    # ------------------------------------------------------------------
    every_5_from_3 = LRP.parse("3 + 5n")  # {..., -7, -2, 3, 8, 13, ...}
    print("lrp:", every_5_from_3)
    print("  contains 13?", every_5_from_3.contains(13))
    print("  contains 14?", every_5_from_3.contains(14))
    print("  members in [0, 30]:", list(every_5_from_3.enumerate(0, 30)))

    # Intersection is computed by the Chinese Remainder Theorem:
    meet = every_5_from_3.intersect(LRP.parse("2n + 1"))
    print("  (3 + 5n) ∩ (1 + 2n) =", meet)

    # ------------------------------------------------------------------
    # 2. Generalized relations: infinite temporal extensions as data.
    # ------------------------------------------------------------------
    # A sensor fires every 6 minutes starting at minute 2, forever, and
    # a maintenance window covers minutes 100..200 of every day-like
    # 1440-minute cycle.  Both are single generalized tuples.
    fires = GeneralizedRelation.empty(Schema.make(temporal=["t"]))
    fires.add_tuple(["2 + 6n"])

    maintenance = GeneralizedRelation.empty(Schema.make(temporal=["t"]))
    maintenance.add_tuple(["n"], "t >= 100 & t <= 200")

    # Which firings land inside the maintenance window?  Pure symbolic
    # intersection — no enumeration, no horizon.
    risky = algebra.intersect(fires, maintenance)
    print("\nfirings inside the window:", sorted(risky.enumerate(0, 300)))

    # The complement is *also* a generalized relation (closure!):
    quiet = algebra.complement(fires)
    print("minutes 0..12 with no firing:", sorted(quiet.enumerate(0, 12)))

    # ------------------------------------------------------------------
    # 3. Intervals + data attributes + first-order queries.
    # ------------------------------------------------------------------
    db = Database()
    db.create("Shift", temporal=["start", "end"], data=["worker"])
    shifts = db.relation("Shift")
    # alice works [0, 8] every 24 "hours", forever; bob works [8, 16].
    shifts.add_tuple(["24n", "8 + 24n"], "start = end - 8", ["alice"])
    shifts.add_tuple(["8 + 24n", "16 + 24n"], "start = end - 8", ["bob"])

    print("\nIs someone on shift at t = 1000012?")
    print(
        " ",
        db.ask("EXISTS w. EXISTS s. EXISTS e. "
               "Shift(s, e, w) & s <= 1000012 & 1000012 <= e"),
    )

    print("Does alice ever hand over directly to bob?")
    print(
        " ",
        db.ask('EXISTS t. EXISTS s. EXISTS e. '
               'Shift(s, t, "alice") & Shift(t, e, "bob")'),
    )

    print("Who is on shift at t = 12?")
    answer = db.query("EXISTS s. EXISTS e. Shift(s, e, w) & s <= 12 & 12 <= e")
    for point in answer.enumerate(0, 0):
        print("  worker:", point[0])


if __name__ == "__main__":
    main()
