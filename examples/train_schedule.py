"""Example 2.4 from the paper: the hourly Liège-Brussels train schedule.

Every hour h there is a slow train leaving Liège at h:02 and arriving in
Brussels at h+1:20, and an express leaving at h:46 arriving at h+1:50.
Representing departures and arrivals as *two separate unary predicates*
loses the pairing (one could conclude there is a train leaving at h:46
and arriving at h:50!); a single relation with two temporal attributes —
an interval — keeps it.

Run:  python examples/train_schedule.py
"""

from repro.intervals import (
    at_time,
    fmt_time,
    liege_brussels_schedule,
)
from repro.query import Database


def main() -> None:
    trains = liege_brussels_schedule()
    print("The schedule, as a generalized relation (times in minutes):")
    print(trains)

    # ------------------------------------------------------------------
    # Concrete lookups: the infinite schedule answers any hour.
    # ------------------------------------------------------------------
    print("\nThe paper's concrete trains:")
    for dep, arr, label in [
        (at_time(7, 2), at_time(8, 20), "slow"),
        (at_time(7, 46), at_time(8, 50), "express"),
    ]:
        verdict = trains.contains([dep, arr], [label])
        print(f"  {label:<8} {fmt_time(dep)} -> {fmt_time(arr)}: {verdict}")

    print("\nThe spurious pairing a point-based encoding would admit:")
    dep, arr = at_time(7, 46), at_time(7, 50)
    print(
        f"  express {fmt_time(dep)} -> {fmt_time(arr)}:",
        trains.contains([dep, arr], ["express"]),
    )

    print("\nA train a year of hours away (hour 8760):")
    dep = at_time(7, 2, day=365)
    print(
        f"  slow {fmt_time(dep)} -> {fmt_time(dep + 78)}:",
        trains.contains([dep, dep + 78], ["slow"]),
    )

    # ------------------------------------------------------------------
    # First-order queries over the infinite schedule.
    # ------------------------------------------------------------------
    db = Database()
    db.register("Train", trains)

    print("\nIs there ever a moment when two trains are en route at once?")
    overlapping = db.ask(
        'EXISTS d1. EXISTS a1. EXISTS d2. EXISTS a2. '
        'Train(d1, a1, "slow") & Train(d2, a2, "express") '
        "& d2 >= d1 & d2 < a1"
    )
    print("  ", overlapping, "(the 7:46 express departs while the 7:02 "
          "slow train is still travelling)")

    print("\nDepartures between 9:00 and 10:00 (any service):")
    res = db.query(
        "EXISTS a. EXISTS s. Train(d, a, s) & d >= {} & d <= {}".format(
            at_time(9, 0), at_time(10, 0)
        )
    )
    for (d,) in sorted(res.enumerate(at_time(9, 0), at_time(10, 0))):
        print("  departs", fmt_time(d))

    print("\nDoes every express trip take exactly 64 minutes?")
    print(
        "  ",
        db.ask(
            'FORALL d. FORALL a. Train(d, a, "express") -> '
            "(d + 64 <= a & a <= d + 64)"
        ),
    )

    print("\nIs there a slow train one can catch 10 minutes after any "
          "express arrival?  (i.e. always a slow departure within "
          "[arrival, arrival + 10])")
    print(
        "  ",
        db.ask(
            'FORALL d. FORALL a. Train(d, a, "express") -> '
            '(EXISTS d2. EXISTS a2. Train(d2, a2, "slow") '
            "& d2 >= a & d2 <= a + 10)"
        ),
    )
    # express arrives at :50; next slow departs at :02 — 12 minutes, so
    # within 10 minutes fails; within 15 succeeds:
    print(
        "   ... within 15 minutes:",
        db.ask(
            'FORALL d. FORALL a. Train(d, a, "express") -> '
            '(EXISTS d2. EXISTS a2. Train(d2, a2, "slow") '
            "& d2 >= a & d2 <= a + 15)"
        ),
    )


if __name__ == "__main__":
    main()
