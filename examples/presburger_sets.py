"""Presburger arithmetic as data: the expressiveness theorems at work.

Theorem 2.1: unary Presburger predicates are exactly what restricted
generalized relations express.  Theorem 2.2: binary ones need general
constraints.  This example compiles formulas both ways and inspects the
resulting relations.

Run:  python examples/presburger_sets.py
"""

from repro.presburger import (
    compile_binary,
    compile_unary,
    parse_formula,
    relation_to_formula,
    solutions,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Unary: boolean combinations compile through the closed algebra.
    # ------------------------------------------------------------------
    text = "v = 1 mod 3 & ~(v = 0 mod 2) & v > -10"
    formula = parse_formula(text)
    rel = compile_unary(formula)
    print(f"formula: {text}")
    print("compiled relation (restricted constraints only):")
    print(rel)
    print("members in [-12, 30]:", sorted(x for (x,) in rel.snapshot(-12, 30)))
    print(
        "direct evaluation agrees:",
        {x for (x,) in rel.snapshot(-12, 30)}
        == {x for (x,) in solutions(formula, ["v"], -12, 30)},
    )

    # Round trip back to a formula (the reverse direction of Thm 2.1).
    back = relation_to_formula(rel)
    print("\nround-tripped formula:", back)

    # ------------------------------------------------------------------
    # Unary congruence: the paper's case 4, k1*v ≡ c (mod k2).
    # ------------------------------------------------------------------
    cong = parse_formula("2v = 3 mod 7")
    rel2 = compile_unary(cong)
    print("\nformula: 2v = 3 mod 7   (2v ≡ 3 (mod 7))")
    print("compiled:", rel2)
    print("members in [0, 30]:", sorted(x for (x,) in rel2.snapshot(0, 30)))

    # ------------------------------------------------------------------
    # Binary: general constraints (coefficients != 1).
    # ------------------------------------------------------------------
    btext = "3x < 2y + 1 & x = y mod 4"
    bform = parse_formula(btext)
    brel = compile_binary(bform, variables=("x", "y"))
    print(f"\nbinary formula: {btext}")
    print("compiled general relation:")
    print(brel)
    got = brel.snapshot(-6, 6)
    want = solutions(bform, ["x", "y"], -6, 6)
    print("window [-6,6]^2 agreement:", got == want, f"({len(got)} pairs)")

    # A pure congruence compiles into constraint-free lattice classes:
    lattice = compile_binary(parse_formula("2x = 3y + 1 mod 5"))
    print("\n2x ≡ 3y + 1 (mod 5) — pure lattice classes, no constraints:")
    print(lattice)


if __name__ == "__main__":
    main()
