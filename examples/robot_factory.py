"""Table 1 and Example 4.1 from the paper: robot activities.

The relation ``Perform(t1, t2, robot, task)`` stores which robot
performs which task over which interval — each row a periodically
repeating, infinite family of intervals.

Run:  python examples/robot_factory.py
"""

from repro.query import Database
from repro.storage import textio

TABLE_1 = """
relation Perform(t1:T, t2:T, robot:D, task:D)
[2 + 2n, 4 + 2n]   : t1 = t2 - 2 & t1 >= -1 | robot1, task1
[6 + 10n, 7 + 10n] : t1 = t2 - 1 & t1 >= 10 | robot2, task2
[10n, 3 + 10n]     : t1 = t2 - 3            | robot2, task1
"""

EXAMPLE_4_1 = """
EXISTS x. EXISTS y. EXISTS t1. EXISTS t2.
FORALL t3. FORALL t4. FORALL z.
  (Perform(t1, t2, x, "task2")
     & t1 <= t3 & t3 <= t4 & t4 <= t2 & t1 + 5 <= t2)
  -> ~Perform(t3, t4, y, z)
"""


def main() -> None:
    name, perform = textio.loads(TABLE_1)
    print("Loaded", name, "with", len(perform), "generalized tuples:")
    print(perform)

    db = Database()
    db.register("Perform", perform)

    # ------------------------------------------------------------------
    # Concrete facts implied by the infinite table.
    # ------------------------------------------------------------------
    print("\nSome concrete activities:")
    for t1, t2, robot, task in [
        (2, 4, "robot1", "task1"),
        (1000000, 1000002, "robot1", "task1"),
        (16, 17, "robot2", "task2"),
        (6, 7, "robot2", "task2"),  # excluded by t1 >= 10
    ]:
        verdict = perform.contains([t1, t2], [robot, task])
        print(f"  Perform({t1}, {t2}, {robot}, {task}) = {verdict}")

    # ------------------------------------------------------------------
    # First-order queries.
    # ------------------------------------------------------------------
    print("\nWhich robots ever perform task2?")
    res = db.query('EXISTS t1. EXISTS t2. Perform(t1, t2, r, "task2")')
    for (robot,) in res.enumerate(0, 0):
        print("  ", robot)

    print("\nWhen does robot2 start task2 (first few start times >= 0)?")
    res = db.query('EXISTS t2. Perform(t, t2, "robot2", "task2")')
    print("  ", sorted(x for (x,) in res.enumerate(0, 60)))

    print("\nIs robot1 a task1 specialist (never performs anything else)?")
    print(
        "  ",
        db.ask(
            'FORALL t1. FORALL t2. FORALL k. '
            'Perform(t1, t2, "robot1", k) -> k = "task1"'
        ),
    )

    print("\nAre robot1 and robot2 ever active simultaneously "
          "(overlapping intervals)?")
    print(
        "  ",
        db.ask(
            "EXISTS a1. EXISTS b1. EXISTS a2. EXISTS b2. "
            "EXISTS k1. EXISTS k2. "
            'Perform(a1, b1, "robot1", k1) & Perform(a2, b2, "robot2", k2) '
            "& a2 <= b1 & a1 <= b2"
        ),
    )

    # ------------------------------------------------------------------
    # The paper's Example 4.1.
    # ------------------------------------------------------------------
    print("\nExample 4.1: is there a robot x and a robot y such that, if")
    print("x performs task2 over an interval of length >= 5, then y is")
    print("not performing any task during any part of that interval?")
    print("  ", db.ask(EXAMPLE_4_1))
    print("  (vacuously true on Table 1: task2 intervals have length 1)")

    # Make the antecedent satisfiable and ask again.
    perform.add_tuple(
        ["20n", "6 + 20n"], "t1 = t2 - 6", ["robot3", "task2"]
    )
    print("\nAfter adding robot3 performing task2 on [20n, 20n + 6]:")
    print("  ", db.ask(EXAMPLE_4_1))


if __name__ == "__main__":
    main()
