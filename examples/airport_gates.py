"""Gate-conflict detection for a periodic airport timetable.

A small airport runs a repeating daily timetable (times in minutes,
1440 per day).  Each flight occupies a gate over an interval, forever.
The question "do two flights ever need the same gate at overlapping
times?" is a query over infinite interval relations — answered exactly,
symbolically, with Allen's interval relations compiled onto the
generalized algebra.

Run:  python examples/airport_gates.py
"""

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.intervals import MINUTES_PER_DAY, at_time, fmt_time


def build_timetable() -> GeneralizedRelation:
    """Daily occupancy: [start, end] at a gate by a flight, every day."""
    schema = Schema.make(
        temporal=["start", "end"], data=["gate", "flight"]
    )
    rel = GeneralizedRelation.empty(schema)
    day = MINUTES_PER_DAY

    def occupy(hhmm_start, hhmm_end, gate, flight):
        s = at_time(*hhmm_start)
        e = at_time(*hhmm_end)
        rel.add_tuple(
            [f"{s} + {day}n", f"{e} + {day}n"],
            f"start = end - {e - s}",
            [gate, flight],
        )

    occupy((6, 0), (6, 45), "A1", "RP101")
    occupy((7, 0), (7, 40), "A1", "RP205")
    occupy((6, 30), (7, 10), "A2", "RP317")
    occupy((6, 40), (7, 5), "A1", "RP999")  # deliberately conflicting
    return rel


def main() -> None:
    timetable = build_timetable()
    print("Daily timetable (infinite relation, one tuple per flight):")
    print(timetable)

    # Pair up distinct flights at the same gate with overlapping
    # occupancy.  Overlap of [s1,e1] and [s2,e2]: s2 < e1 and s1 < e2.
    left = algebra.rename(
        timetable,
        {"start": "s1", "end": "e1", "gate": "g1", "flight": "f1"},
    )
    right = algebra.rename(
        timetable,
        {"start": "s2", "end": "e2", "gate": "g2", "flight": "f2"},
    )
    pairs = algebra.product(left, right)
    overlapping = algebra.select(pairs, "s2 < e1 & s1 < e2")
    same_gate = algebra.select_data_equal(overlapping, "g1", "g2")
    conflicts = GeneralizedRelation.empty(same_gate.schema)
    for gtuple in same_gate:
        f1 = gtuple.data[1]
        f2 = gtuple.data[3]
        if f1 < f2:  # distinct flights, each conflict reported once
            conflicts.add(gtuple)

    print("\nGate conflicts (checked over ALL days at once):")
    if conflicts.is_empty():
        print("  none")
    day0 = (0, MINUTES_PER_DAY - 1)
    for point in sorted(conflicts.enumerate(*day0)):
        s1, e1, g1, f1, s2, e2, g2, f2 = point
        print(
            f"  gate {g1}: {f1} [{fmt_time(s1)}-{fmt_time(e1)}] vs "
            f"{f2} [{fmt_time(s2)}-{fmt_time(e2)}]  (and every day after)"
        )

    # ------------------------------------------------------------------
    # Fixing the conflict by shifting RP999 later.
    # ------------------------------------------------------------------
    print("\nShifting RP999's slot by +45 minutes:")
    fixed = GeneralizedRelation.empty(timetable.schema)
    for gtuple in timetable:
        if gtuple.data[1] == "RP999":
            continue
        fixed.add(gtuple)
    s = at_time(7, 45)
    fixed.add_tuple(
        [f"{s} + {MINUTES_PER_DAY}n", f"{s + 25} + {MINUTES_PER_DAY}n"],
        "start = end - 25",
        ["A1", "RP999"],
    )
    left = algebra.rename(
        fixed, {"start": "s1", "end": "e1", "gate": "g1", "flight": "f1"}
    )
    right = algebra.rename(
        fixed, {"start": "s2", "end": "e2", "gate": "g2", "flight": "f2"}
    )
    pairs = algebra.select(
        algebra.product(left, right), "s2 < e1 & s1 < e2"
    )
    clashes = [
        g
        for g in algebra.select_data_equal(pairs, "g1", "g2")
        if g.data[1] < g.data[3]
    ]
    live = [
        g for g in clashes
        if not GeneralizedRelation(pairs.schema, [g]).is_empty()
    ]
    print("  remaining conflicts:", len(live))


if __name__ == "__main__":
    main()
