"""Temporal-logic model checking on infinite periodic behaviour.

The paper's introduction borrows "infinite and repeating temporal
information" from concurrent-program verification, where temporal logic
"easily expresses that something happens eventually or infinitely
often" and model checking is "a form of query evaluation on a special
type of database".  Here a cyclic scheduler's infinite trace is stored
as generalized relations, and liveness/safety properties are decided
exactly — including "infinitely often", which no finite trace prefix
can decide.

Run:  python examples/model_checking.py
"""

from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.tl import (
    Model,
    Next,
    always,
    atom,
    conj,
    disj,
    eventually,
    eventually_always,
    infinitely_often,
    negate,
    until,
)


def build_scheduler_model() -> Model:
    """A round-robin scheduler with a 9-tick cycle, forever.

    Process A runs at ticks 9n..9n+2, B at 9n+3..9n+5, C at 9n+6..9n+7;
    tick 9n+8 is a context-switch gap.  A one-off crash blocks C during
    the first cycle only (ticks 6..7 replaced by downtime).
    """
    running = GeneralizedRelation.empty(
        Schema.make(temporal=["t"], data=["proc"])
    )
    for phase in (0, 1, 2):
        running.add_tuple([f"{phase} + 9n"], data=["A"])
    for phase in (3, 4, 5):
        running.add_tuple([f"{phase} + 9n"], data=["B"])
    for phase in (6, 7):
        running.add_tuple([f"{phase} + 9n"], "t >= 9", data=["C"])
    down = relation(temporal=["t"])
    down.add_tuple(["n"], "t >= 6 & t <= 7")
    model = Model({"Running": running, "Down": down})
    return model


def main() -> None:
    model = build_scheduler_model()
    run_a = atom("Running", proc="A")
    run_b = atom("Running", proc="B")
    run_c = atom("Running", proc="C")
    down = atom("Down")

    print("The scheduler trace is an infinite periodic structure.")
    sat_a = model.sat(run_a)
    print("A runs at:", sorted(x for (x,) in sat_a.enumerate(0, 20)), "...")

    print("\nSafety — mutual exclusion (no two processes at once):")
    for left, right in [(run_a, run_b), (run_a, run_c), (run_b, run_c)]:
        exclusive = model.holds_everywhere(negate(conj(left, right)))
        print(f"  G !({left} & {right}) : {exclusive}")

    print("\nLiveness — every process runs infinitely often:")
    for proc in (run_a, run_b, run_c):
        print(f"  G F {proc} : {model.holds_everywhere(infinitely_often(proc))}")

    print("\nThe crash is transient — eventually the system is never down:")
    print(
        "  F G !Down :",
        model.holds_everywhere(eventually_always(negate(down))),
    )
    print(
        "  G !Down   :",
        model.holds_everywhere(always(negate(down))),
        " (false: the crash did happen)",
    )

    print("\nResponse — whenever A runs, B runs later in the same cycle:")
    # G (A -> F B), expressed as G(!A | F B)
    response = always(disj(negate(run_a), eventually(run_b)))
    print("  G (A -> F B) :", model.holds_everywhere(response))

    print("\nUntil — from a context-switch gap, nothing runs until A does:")
    nothing = negate(disj(run_a, run_b, run_c))
    sat = model.sat(until(nothing, run_a))
    gap_ticks = [17, 26, 35]  # ticks 9n+8
    print(
        "  (idle U A) at gap ticks", gap_ticks, ":",
        [sat.contains([t]) for t in gap_ticks],
    )

    print("\nNext — at tick 9n+2 (A's last slot) the very next tick is B:")
    at_2 = model.sat(conj(run_a, Next(run_b)))
    print("  A & X B at:", sorted(x for (x,) in at_2.enumerate(0, 20)), "...")


if __name__ == "__main__":
    main()
